"""Tests for the mesh/torus topology abstraction and dateline classes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.topology import (
    MeshTopology,
    TorusTopology,
    make_topology,
    ring_direction,
    ring_distance,
    torus_ring_class,
)
from repro.core.types import Direction, NodeId

from .conftest import run_small


class TestMeshTopology:
    def test_border_has_no_neighbor(self):
        mesh = MeshTopology(4, 4)
        assert mesh.neighbor(NodeId(0, 0), Direction.WEST) is None
        assert mesh.neighbor(NodeId(3, 3), Direction.SOUTH) is None

    def test_interior_neighbor(self):
        mesh = MeshTopology(4, 4)
        assert mesh.neighbor(NodeId(1, 1), Direction.EAST) == NodeId(2, 1)

    def test_distance_is_manhattan(self):
        mesh = MeshTopology(8, 8)
        assert mesh.distance(NodeId(0, 0), NodeId(7, 7)) == 14


class TestTorusTopology:
    def test_wraparound_neighbors(self):
        torus = TorusTopology(4, 4)
        assert torus.neighbor(NodeId(0, 0), Direction.WEST) == NodeId(3, 0)
        assert torus.neighbor(NodeId(3, 3), Direction.SOUTH) == NodeId(3, 0)
        assert torus.neighbor(NodeId(3, 1), Direction.EAST) == NodeId(0, 1)

    def test_distance_uses_shorter_way(self):
        torus = TorusTopology(8, 8)
        assert torus.distance(NodeId(0, 0), NodeId(7, 0)) == 1
        assert torus.distance(NodeId(0, 0), NodeId(4, 0)) == 4
        assert torus.distance(NodeId(0, 0), NodeId(7, 7)) == 2

    @given(st.integers(3, 9), st.integers(0, 8), st.integers(0, 8))
    def test_distance_never_exceeds_mesh(self, k, ax, bx):
        ax, bx = ax % k, bx % k
        assert ring_distance(ax, bx, k) <= abs(ax - bx)

    def test_factory(self):
        assert make_topology("mesh", 4, 4).name == "mesh"
        assert make_topology("torus", 4, 4).name == "torus"
        with pytest.raises(ValueError):
            make_topology("hypercube", 4, 4)


class TestRingDirection:
    def test_shorter_way_wins(self):
        # 0 -> 6 on an 8-ring: backward (west) is shorter.
        assert (
            ring_direction(0, 6, 8, Direction.EAST, Direction.WEST)
            is Direction.WEST
        )
        assert (
            ring_direction(0, 2, 8, Direction.EAST, Direction.WEST)
            is Direction.EAST
        )

    def test_tie_goes_positive(self):
        assert (
            ring_direction(0, 4, 8, Direction.EAST, Direction.WEST)
            is Direction.EAST
        )

    def test_aligned_returns_none(self):
        assert ring_direction(3, 3, 8, Direction.EAST, Direction.WEST) is None

    @given(st.integers(3, 10), st.integers(0, 9), st.integers(0, 9))
    def test_following_direction_reaches_destination(self, k, a, b):
        a, b = a % k, b % k
        cur, steps = a, 0
        while cur != b:
            d = ring_direction(cur, b, k, Direction.EAST, Direction.WEST)
            cur = (cur + 1) % k if d is Direction.EAST else (cur - 1) % k
            steps += 1
            assert steps <= k
        assert steps == ring_distance(a, b, k)


class TestDatelineClass:
    def test_non_wrapping_path_stays_class_zero(self):
        # 1 -> 3 eastward on an 8-ring never wraps.
        for cur in (1, 2, 3):
            assert torus_ring_class(1, cur, 3, 8) == 0

    def test_wrapping_path_switches_class(self):
        # 6 -> 2 on an 8-ring goes east through the 7->0 wrap.
        assert torus_ring_class(6, 6, 2, 8) == 0
        assert torus_ring_class(6, 7, 2, 8) == 0
        assert torus_ring_class(6, 0, 2, 8) == 1
        assert torus_ring_class(6, 1, 2, 8) == 1

    def test_westward_wrap(self):
        # 1 -> 6 on an 8-ring goes west through the 0->7 wrap.
        assert torus_ring_class(1, 1, 6, 8) == 0
        assert torus_ring_class(1, 0, 6, 8) == 0
        assert torus_ring_class(1, 7, 6, 8) == 1

    @given(st.integers(3, 10), st.integers(0, 9), st.integers(0, 9))
    def test_class_is_monotone_along_the_path(self, k, src, dest):
        src, dest = src % k, dest % k
        cur = src
        classes = []
        steps = 0
        while cur != dest:
            classes.append(torus_ring_class(src, cur, dest, k))
            d = ring_direction(cur, dest, k, Direction.EAST, Direction.WEST)
            cur = (cur + 1) % k if d is Direction.EAST else (cur - 1) % k
            steps += 1
            assert steps <= k
        # The class never decreases: once across the dateline, stay in 1.
        assert classes == sorted(classes)
        assert all(c in (0, 1) for c in classes)


class TestTorusSimulation:
    def test_full_delivery_on_torus(self):
        result = run_small(
            topology="torus", router="generic", injection_rate=0.10
        )
        assert result.completion_probability == 1.0

    def test_torus_beats_mesh_on_uniform_latency(self):
        """Wraparound halves average distance, so the same load must be
        faster on the torus."""
        mesh = run_small(router="generic", injection_rate=0.10)
        torus = run_small(
            topology="torus", router="generic", injection_rate=0.10
        )
        assert torus.average_hops < mesh.average_hops
        assert torus.average_latency < mesh.average_latency

    def test_torus_sustains_higher_load(self):
        result = run_small(
            topology="torus",
            router="generic",
            injection_rate=0.30,
            measure_packets=400,
        )
        assert result.completion_probability == 1.0

    def test_torus_validation(self):
        from repro.core.config import SimulationConfig

        with pytest.raises(ValueError):
            SimulationConfig(topology="torus", router="roco")
        with pytest.raises(ValueError):
            SimulationConfig(topology="torus", router="generic", routing="adaptive")
        with pytest.raises(ValueError):
            SimulationConfig(topology="donut")

    def test_every_node_has_four_outputs(self):
        from repro.core.config import SimulationConfig
        from repro.core.network import Network

        net = Network(
            SimulationConfig(
                width=4, height=4, topology="torus", router="generic"
            )
        )
        for router in net.routers.values():
            assert len(router.outputs) == 4
