"""Unit tests for inter-router channels."""

import pytest

from repro.core.channel import LINK_DELAY, Channel


class TestChannel:
    def test_delivery_after_delay(self):
        ch = Channel()
        ch.send("flit", cycle=10)
        assert ch.deliver(10 + LINK_DELAY - 1) == []
        assert ch.deliver(10 + LINK_DELAY) == ["flit"]

    def test_single_lane_bandwidth_enforced(self):
        ch = Channel()
        ch.send("a", cycle=3)
        with pytest.raises(RuntimeError):
            ch.send("b", cycle=3)

    def test_consecutive_cycles_allowed(self):
        ch = Channel()
        ch.send("a", cycle=3)
        ch.send("b", cycle=4)
        assert ch.deliver(3 + LINK_DELAY) == ["a"]
        assert ch.deliver(4 + LINK_DELAY) == ["b"]

    def test_multi_lane_channel(self):
        ch = Channel(single_lane=False)
        ch.send(1, cycle=0)
        ch.send(2, cycle=0)
        assert ch.deliver(LINK_DELAY) == [1, 2]

    def test_deliver_is_idempotent_after_drain(self):
        ch = Channel()
        ch.send("x", cycle=0)
        assert ch.deliver(LINK_DELAY) == ["x"]
        assert ch.deliver(LINK_DELAY) == []

    def test_busy_and_len(self):
        ch = Channel()
        assert not ch.busy and len(ch) == 0
        ch.send("x", cycle=0)
        assert ch.busy and len(ch) == 1

    def test_custom_delay(self):
        ch = Channel(delay=5)
        ch.send("x", cycle=0)
        assert ch.deliver(4) == []
        assert ch.deliver(5) == ["x"]

    def test_late_delivery_flushes_everything_due(self):
        ch = Channel(single_lane=False)
        ch.send("a", cycle=0)
        ch.send("b", cycle=1)
        assert ch.deliver(100) == ["a", "b"]
