"""Tests for resilience metrics, the campaign runner and the watchdog."""

import pytest

from repro.core.simulator import Simulator
from repro.core.types import NodeId
from repro.faults import Component, ComponentFault, FaultSchedule
from repro.harness.campaign import run_campaign
from repro.harness.parallel import ResultCache, SimJob, execute_job, job_key
from repro.instrumentation import WatchdogProbe
from repro.metrics.resilience import (
    PacketAccounting,
    ResilienceProbe,
    degradation_curve,
)

from .conftest import small_config


def center_kill(cycle, duration=None):
    return FaultSchedule.at_cycle(
        cycle, [ComponentFault(NodeId(1, 1), Component.VA, "row")], duration
    )


class TestPacketAccounting:
    def test_from_fault_free_result(self, baseline_results):
        accounting = PacketAccounting.from_result(baseline_results["roco"])
        assert accounting.conserved
        assert accounting.generated > 0
        assert accounting.delivered + accounting.dropped == accounting.generated

    def test_delivered_fraction_bounds(self, baseline_results):
        accounting = PacketAccounting.from_result(baseline_results["roco"])
        assert 0.0 <= accounting.delivered_fraction <= 1.0

    def test_describe_mentions_reasons(self):
        accounting = PacketAccounting(
            generated=10, delivered=8, dropped=2,
            drops_by_reason={"stall_timeout": 2},
        )
        assert accounting.conserved
        text = accounting.describe()
        assert "generated=10" in text
        assert "stall_timeout=2" in text

    def test_leak_detected(self):
        leaky = PacketAccounting(generated=10, delivered=8, dropped=1)
        assert not leaky.conserved


class TestResilienceProbe:
    def test_rejects_nonpositive_window(self):
        simulator = Simulator(small_config())
        with pytest.raises(ValueError, match="window"):
            ResilienceProbe(simulator, window=0)

    def test_timelines_cover_the_run(self):
        simulator = Simulator(small_config())
        probe = ResilienceProbe(simulator, window=50)
        result = simulator.run()
        throughput = probe.throughput_timeline()
        assert throughput
        delivered = sum(point.delivered for point in probe.windows)
        assert delivered == result.total_delivered
        dropped = sum(point.dropped for point in probe.windows)
        assert dropped == result.total_dropped
        starts = [start for start, _ in throughput]
        assert starts == sorted(starts)
        assert all(start % 50 == 0 for start in starts)

    def test_latency_timeline_positive(self):
        simulator = Simulator(small_config())
        probe = ResilienceProbe(simulator, window=100)
        simulator.run()
        latency = probe.latency_timeline()
        assert latency
        assert all(value > 0 for _, value in latency)

    def test_fault_count_staircase(self):
        schedule = center_kill(cycle=150)
        simulator = Simulator(
            small_config(injection_rate=0.15, measure_packets=300),
            schedule=schedule,
        )
        probe = ResilienceProbe(simulator, window=100)
        result = simulator.run()
        staircase = probe.delivered_by_fault_count()
        assert [point.fault_count for point in staircase] == sorted(
            point.fault_count for point in staircase
        )
        assert sum(point.generated for point in staircase) == (
            result.generated_packets
        )
        # Pre-fault service is (near-)perfect; post-fault cannot beat it.
        pre = staircase[0]
        assert pre.fault_count == 0
        assert pre.delivered_fraction >= staircase[-1].delivered_fraction

    def test_delivered_fraction_matches_accounting(self):
        simulator = Simulator(small_config(), schedule=center_kill(cycle=120))
        probe = ResilienceProbe(simulator, window=100)
        result = simulator.run()
        accounting = PacketAccounting.from_result(result)
        assert probe.delivered_fraction() == pytest.approx(
            accounting.delivered_fraction
        )


class TestCampaignRunner:
    def test_run_campaign_end_to_end(self):
        campaign = run_campaign(small_config(), center_kill(cycle=120))
        assert campaign.conserved
        assert 0.0 < campaign.delivered_fraction <= 1.0
        lines = campaign.summary_lines()
        assert any("fault events: 1" in line for line in lines)
        assert any("generated=" in line for line in lines)

    def test_schedulers_agree_through_campaign(self):
        config = small_config()
        schedule = center_kill(cycle=120)
        active = run_campaign(config, schedule)
        sweep = run_campaign(config, schedule, full_sweep=True)
        assert active.accounting == sweep.accounting

    def test_degradation_curve_sorted(self):
        runs = []
        for count, cycle in ((2, 100), (0, 0), (1, 100)):
            faults = [
                ComponentFault(NodeId(1 + i, 1), Component.VA, "row")
                for i in range(count)
            ]
            campaign = run_campaign(
                small_config(), FaultSchedule.at_cycle(cycle, faults)
            )
            runs.append((count, campaign.result))
        curve = degradation_curve(runs)
        assert [count for count, _ in curve] == [0, 1, 2]
        assert all(0.0 <= fraction <= 1.0 for _, fraction in curve)


class TestCampaignJobs:
    def test_schedule_free_key_unchanged(self):
        """Adding the schedule field must not invalidate existing caches."""
        config = small_config()
        assert job_key(SimJob.of(config)) == job_key(
            SimJob(config=config, faults=(), schedule=None)
        )

    def test_schedule_changes_key(self):
        config = small_config()
        bare = job_key(SimJob.of(config))
        scheduled = job_key(SimJob.of(config, schedule=center_kill(100)))
        other = job_key(SimJob.of(config, schedule=center_kill(200)))
        assert bare != scheduled
        assert scheduled != other

    def test_campaign_jobs_cache_correctly(self, tmp_path):
        from repro.harness.parallel import ParallelExecutor

        job = SimJob.of(
            small_config(measure_packets=60, warmup_packets=10),
            schedule=center_kill(80),
        )
        cache = ResultCache(tmp_path)
        executor = ParallelExecutor(workers=1, cache=cache)
        first = executor.run_jobs([job])
        assert executor.last_stats.simulated == 1
        again = executor.run_jobs([job])
        assert executor.last_stats.cache_hits == 1
        assert first == again
        assert first == [execute_job(job)]


class TestWatchdogProbe:
    def test_rejects_nonpositive_window(self):
        simulator = Simulator(small_config())
        with pytest.raises(ValueError, match="stall_window"):
            WatchdogProbe(simulator, stall_window=0)

    def test_quiet_on_healthy_run(self):
        simulator = Simulator(small_config())
        watchdog = WatchdogProbe(simulator, stall_window=300)
        simulator.run()
        assert not watchdog.triggered

    def test_single_observer_slot_enforced(self):
        simulator = Simulator(small_config())
        WatchdogProbe(simulator)
        with pytest.raises(RuntimeError, match="observer"):
            WatchdogProbe(simulator)

    def test_alarms_on_wedged_network(self):
        config = small_config(
            router="generic",
            injection_rate=0.2,
            warmup_packets=10,
            measure_packets=120,
            drain_timeout=600,
        )
        simulator = Simulator(
            config,
            faults=[ComponentFault(NodeId(1, 1), Component.VA, "row")],
        )
        # Hide the fault from the stall-drop path so worms block forever
        # behind the dead node — the watchdog must notice the live
        # routers spinning without progress before the drain rule ends
        # the run.
        simulator.network.has_faults = False
        watchdog = WatchdogProbe(simulator, stall_window=200)
        try:
            simulator.run()
        except Exception:
            pass
        assert watchdog.triggered
        alarm = watchdog.alarms[0]
        assert alarm.stalled_for >= 200
        assert alarm.active_routers > 0
        assert alarm.livelock_suspected
        assert watchdog.max_stall >= alarm.stalled_for
