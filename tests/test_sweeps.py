"""Tests for the parameter-sweep utility."""

import pytest

from repro.harness.sweeps import AXIS_FIELDS, Sweep, pivot

BASE = {
    "width": 3,
    "height": 3,
    "warmup_packets": 10,
    "measure_packets": 60,
    "injection_rate": 0.08,
}


class TestSweepConstruction:
    def test_size(self):
        sweep = Sweep(axes={"router": ["generic", "roco"], "seed": [1, 2, 3]})
        assert sweep.size == 6

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError):
            Sweep(axes={"voltage": [1.0]})

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            Sweep(axes={})

    def test_configurations_cover_grid(self):
        sweep = Sweep(
            axes={"router": ["generic", "roco"], "injection_rate": [0.05, 0.1]},
            base=BASE,
        )
        configs = list(sweep.configurations())
        assert len(configs) == 4
        combos = {(c.router, c.injection_rate) for c in configs}
        assert combos == {
            ("generic", 0.05),
            ("generic", 0.1),
            ("roco", 0.05),
            ("roco", 0.1),
        }

    def test_base_applied(self):
        sweep = Sweep(axes={"seed": [1]}, base=BASE)
        (config,) = sweep.configurations()
        assert config.width == 3
        assert config.measure_packets == 60


class TestSweepExecution:
    def test_run_returns_records(self):
        sweep = Sweep(axes={"router": ["generic", "roco"]}, base=BASE)
        records = sweep.run()
        assert len(records) == 2
        assert {r["router"] for r in records} == {"generic", "roco"}
        assert all(r["completion_probability"] == 1.0 for r in records)

    def test_progress_callback(self):
        calls = []
        sweep = Sweep(axes={"seed": [1, 2]}, base=BASE)
        sweep.run(progress=lambda done, total, result: calls.append((done, total)))
        assert calls == [(1, 2), (2, 2)]


class TestPivot:
    RECORDS = [
        {"router": "a", "rate": 0.1, "lat": 10.0},
        {"router": "a", "rate": 0.2, "lat": 14.0},
        {"router": "b", "rate": 0.1, "lat": 8.0},
        {"router": "a", "rate": 0.1, "lat": 12.0},  # duplicate cell -> mean
    ]

    def test_pivot_shape(self):
        table = pivot(self.RECORDS, row="router", column="rate", value="lat")
        assert set(table) == {"a", "b"}
        assert table["a"][0.2] == 14.0

    def test_duplicate_cells_averaged(self):
        table = pivot(self.RECORDS, row="router", column="rate", value="lat")
        assert table["a"][0.1] == pytest.approx(11.0)


class TestAxisRegistry:
    def test_every_axis_is_a_config_field(self):
        from repro.core.config import SimulationConfig

        for field_name in AXIS_FIELDS.values():
            assert hasattr(SimulationConfig(), field_name)
