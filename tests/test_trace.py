"""Tests for the flit-level flight recorder."""

import pytest

from repro.core.simulator import Simulator
from repro.core.types import NodeId, Packet, make_packet_flits
from repro.instrumentation import EventKind, FlightRecorder

from .conftest import small_config


def _head_flit(pid: int = 0):
    packet = Packet(
        pid=pid, src=NodeId(0, 0), dest=NodeId(2, 0), size=4, created_cycle=0
    )
    return make_packet_flits(packet)[0]


@pytest.fixture(scope="module")
def traced_run():
    sim = Simulator(small_config(injection_rate=0.08, measure_packets=120))
    recorder = FlightRecorder()
    sim.network.trace = recorder
    result = sim.run()
    return sim, recorder, result


class TestEventStream:
    def test_events_collected(self, traced_run):
        _, recorder, _ = traced_run
        assert recorder.events
        kinds = {e.kind for e in recorder.events}
        assert kinds == {
            EventKind.INJECT,
            EventKind.BUFFER,
            EventKind.TRAVERSE,
            EventKind.EJECT,
        }

    def test_every_delivered_flit_ejects(self, traced_run):
        sim, recorder, result = traced_run
        ejects = [e for e in recorder.events if e.kind is EventKind.EJECT]
        assert len(ejects) == sim.network.stats.delivered_flits + (
            0  # warm-up flits are traced too; account below
        ) or len(ejects) >= result.delivered_packets * 4

    def test_event_cycles_monotone_per_flit(self, traced_run):
        _, recorder, _ = traced_run
        pid = recorder.events[0].packet_id
        per_flit = {}
        for event in recorder.packet_events(pid):
            per_flit.setdefault(event.flit_seq, []).append(event.cycle)
        for seq, cycles in per_flit.items():
            assert cycles == sorted(cycles), seq

    def test_max_events_cap(self):
        recorder = FlightRecorder(max_events=3)
        sim = Simulator(small_config(measure_packets=60))
        sim.network.trace = recorder
        sim.run()
        assert len(recorder.events) == 3


class TestJourneys:
    def test_journey_follows_a_minimal_path(self, traced_run):
        _, recorder, _ = traced_run
        pid = recorder.events[0].packet_id
        events = recorder.packet_events(pid)
        src = events[0].node
        journey = recorder.journey(pid)
        assert journey[0] == src
        # Each step moves to a mesh neighbour.
        for a, b in zip(journey, journey[1:]):
            assert abs(a.x - b.x) + abs(a.y - b.y) == 1

    def test_journey_length_is_hops_plus_one(self, traced_run):
        _, recorder, _ = traced_run
        pid = recorder.events[0].packet_id
        events = recorder.packet_events(pid)
        dest = [e for e in events if e.kind is EventKind.EJECT][0].node
        src = events[0].node
        hops = abs(src.x - dest.x) + abs(src.y - dest.y)
        assert len(recorder.journey(pid)) == hops + 1

    def test_hop_timings_positive_dwell(self, traced_run):
        _, recorder, _ = traced_run
        pid = recorder.events[0].packet_id
        timings = recorder.hop_timings(pid)
        assert timings
        for timing in timings:
            assert timing.dwell >= 1

    def test_slowest_hops_sorted(self, traced_run):
        _, recorder, _ = traced_run
        slowest = recorder.slowest_hops(5)
        dwells = [t.dwell for _, t in slowest]
        assert dwells == sorted(dwells, reverse=True)

    def test_dwell_by_node_covers_visited_routers(self, traced_run):
        _, recorder, _ = traced_run
        dwell = recorder.dwell_by_node()
        assert dwell
        assert all(v >= 1 for v in dwell.values())

    def test_format_journey(self, traced_run):
        _, recorder, _ = traced_run
        pid = recorder.events[0].packet_id
        text = recorder.format_journey(pid)
        assert f"packet {pid}" in text
        assert "inject" in text and "eject" in text
        assert "truncated" not in text  # uncapped run: no caveat


class TestRevisitedNodes:
    """A detoured head can visit the same router twice; reconstruction
    must keep both visits instead of collapsing or mis-pairing them."""

    A, B = NodeId(0, 0), NodeId(1, 0)

    def _record_loop(self) -> FlightRecorder:
        recorder = FlightRecorder()
        head = _head_flit()
        recorder.record(0, EventKind.INJECT, head, self.A)
        recorder.record(0, EventKind.BUFFER, head, self.A)
        recorder.record(2, EventKind.TRAVERSE, head, self.A)
        recorder.record(4, EventKind.BUFFER, head, self.B)
        recorder.record(5, EventKind.TRAVERSE, head, self.B)
        recorder.record(7, EventKind.BUFFER, head, self.A)
        recorder.record(9, EventKind.EJECT, head, self.A)
        return recorder

    def test_journey_keeps_both_visits(self):
        assert self._record_loop().journey(0) == [self.A, self.B, self.A]

    def test_hop_timings_pair_each_visit_separately(self):
        timings = self._record_loop().hop_timings(0)
        assert [(t.node, t.arrived, t.departed) for t in timings] == [
            (self.A, 0, 2),
            (self.B, 4, 5),
            (self.A, 7, 9),
        ]
        assert all(t.dwell >= 1 for t in timings)


class TestTruncationIsExplicit:
    def test_dropped_events_counted(self):
        recorder = FlightRecorder(max_events=2)
        head = _head_flit()
        for cycle in range(5):
            recorder.record(cycle, EventKind.BUFFER, head, NodeId(0, 0))
        assert len(recorder.events) == 2
        assert recorder.dropped_events == 3
        assert recorder.truncated is True

    def test_untruncated_recorder_reports_clean(self):
        recorder = FlightRecorder(max_events=10)
        recorder.record(0, EventKind.BUFFER, _head_flit(), NodeId(0, 0))
        assert recorder.truncated is False
        assert recorder.dropped_events == 0

    def test_format_journey_carries_truncation_note(self):
        recorder = FlightRecorder(max_events=2)
        head = _head_flit()
        for cycle in range(6):
            recorder.record(cycle, EventKind.BUFFER, head, NodeId(0, 0))
        text = recorder.format_journey(0)
        assert "trace truncated: 4 event(s) dropped" in text
        assert "journey may be incomplete" in text

    def test_simulated_capped_run_flags_truncation(self):
        recorder = FlightRecorder(max_events=3)
        sim = Simulator(small_config(measure_packets=60))
        sim.network.trace = recorder
        sim.run()
        assert recorder.truncated
        assert recorder.dropped_events > 0


class TestOverheadFreeWhenDetached:
    def test_untraced_run_records_nothing(self):
        sim = Simulator(small_config(measure_packets=60))
        assert sim.network.trace is None
        sim.run()  # must simply not crash and not trace
