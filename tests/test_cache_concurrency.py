"""Concurrency tests for the shared result cache counters and files.

The satellite contract (docs/serving.md, docs/parallel-execution.md):

* :class:`ResultCache` counters are thread-safe — N threads hammering
  ``lookup``/``store`` lose no increments, and ``summary()`` reads a
  consistent snapshot;
* concurrent stores and lookups of the *same* key never surface a torn
  write: every lookup sees a complete record or a miss, and no
  ``<key>.corrupt`` quarantine or ``.tmp`` litter appears on healthy
  concurrent access.
"""

import threading

from repro.harness.parallel import ResultCache


class TestCounterThreadSafety:
    def test_concurrent_stores_count_exactly(self, tmp_path):
        cache = ResultCache(tmp_path)
        threads_n, per_thread = 8, 50

        def work(worker: int) -> None:
            for i in range(per_thread):
                cache.store(f"w{worker}-k{i}", {"v": i})

        threads = [
            threading.Thread(target=work, args=(w,)) for w in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.stores == threads_n * per_thread
        assert cache.counters() == {
            "hits": 0,
            "misses": 0,
            "stores": threads_n * per_thread,
            "corrupt": 0,
        }

    def test_concurrent_hits_and_misses_count_exactly(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("present", {"v": 1})
        threads_n, per_thread = 8, 50

        def work() -> None:
            for _ in range(per_thread):
                assert cache.lookup("present") == {"v": 1}
                assert cache.lookup("absent") is None

        threads = [threading.Thread(target=work) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expected = threads_n * per_thread
        counters = cache.counters()
        assert counters["hits"] == expected
        assert counters["misses"] == expected
        assert counters["corrupt"] == 0

    def test_summary_reflects_counter_snapshot(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("k", {"v": 1})
        cache.lookup("k")
        cache.lookup("gone")
        assert cache.summary() == "1 hits, 1 misses, 1 stores"

    def test_summary_includes_corrupt_when_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path_for("bad").write_text("{ torn")
        assert cache.lookup("bad") is None
        assert (
            cache.summary()
            == "0 hits, 1 misses, 0 stores, 1 corrupt (quarantined)"
        )


class TestTornWriteSafety:
    def test_same_key_store_lookup_storm_never_corrupts(self, tmp_path):
        """Many writers and readers on ONE key: every lookup is either a
        complete record or a miss — never a quarantine."""
        cache = ResultCache(tmp_path)
        key = "contended"
        stop = threading.Event()
        seen: list[dict] = []
        failures: list[str] = []

        def writer(worker: int) -> None:
            i = 0
            while not stop.is_set():
                cache.store(key, {"worker": worker, "i": i, "pad": "x" * 4096})
                i += 1

        def reader() -> None:
            while not stop.is_set():
                record = cache.lookup(key)
                if record is None:
                    continue
                if set(record) != {"worker", "i", "pad"}:
                    failures.append(f"torn record: {sorted(record)}")
                seen.append(record)

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(3)
        ] + [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        timer = threading.Timer(1.5, stop.set)
        timer.start()
        for t in threads:
            t.join(timeout=30)
        timer.cancel()

        assert not failures, failures[:3]
        assert seen, "readers never observed a stored record"
        assert cache.corrupt == 0
        assert not list(tmp_path.glob("*.corrupt"))
        assert not list(tmp_path.glob("*.tmp"))
        # The final state is one of the writers' last records, intact.
        final = cache.lookup(key)
        assert set(final) == {"worker", "i", "pad"}

    def test_distinct_key_storm_all_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        threads_n, per_thread = 6, 40

        def work(worker: int) -> None:
            for i in range(per_thread):
                key = f"w{worker}-k{i}"
                cache.store(key, {"worker": worker, "i": i})
                assert cache.lookup(key) == {"worker": worker, "i": i}

        threads = [
            threading.Thread(target=work, args=(w,)) for w in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.corrupt == 0
        assert cache.hits == threads_n * per_thread
        assert not list(tmp_path.glob("*.tmp"))
