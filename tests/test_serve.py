"""Tests for the simulation job server (docs/serving.md).

The contract under test:

* **Protocol** — requests normalize through the same
  :func:`~repro.harness.parallel.job_key` as batch sweeps: identity
  over the wire is identity on disk.
* **Dedupe** — N identical concurrent submissions run exactly one
  simulation and every waiter gets a bit-identical record; the shared
  cache serves warm keys without simulating.
* **Admission control** — beyond ``max_inflight`` distinct jobs,
  submissions shed with :class:`SaturatedError` (HTTP 503 +
  ``Retry-After``).
* **Resilience** — injected worker crashes in server mode recover
  through the RetryPolicy with records identical to a clean run.
* **Transport** — the asyncio HTTP layer and the thin client
  round-trip submissions, blocking results and NDJSON event streams.
"""

import threading

import pytest

from repro.core.config import SimulationConfig
from repro.harness.chaos import ChaosConfig, ChaosRule
from repro.harness.parallel import ResultCache, SimJob, execute_job, job_key
from repro.harness.resilient import RetryPolicy
from repro.serve.broker import JobBroker, SaturatedError, serve_execute_job
from repro.serve.client import (
    RequestRejected,
    ServeClient,
    ServerSaturated,
)
from repro.serve.protocol import (
    MAX_JOBS_PER_REQUEST,
    RequestError,
    build_config,
    decode_event,
    encode_event,
    normalize_request,
)
from repro.serve.server import ServerThread

BASE = {
    "width": 3,
    "height": 3,
    "warmup_packets": 10,
    "measure_packets": 60,
    "injection_rate": 0.08,
}

#: Fast supervision for synthetic-job tests: no backoff, no structural
#: validation (synthetic records are not full simulation records).
FAST = RetryPolicy(backoff_base=0.0, validate=False)


def small_config(**overrides) -> SimulationConfig:
    params = dict(BASE)
    params.update(overrides)
    return SimulationConfig(**params)


def small_job(**overrides) -> SimJob:
    return SimJob.of(small_config(**overrides))


class TestProtocol:
    def test_experiment_key_matches_batch_key(self):
        """Identity over the wire == identity on disk."""
        request = normalize_request(
            {"kind": "experiment", "config": dict(BASE)}
        )
        assert len(request.jobs) == 1
        assert job_key(request.jobs[0]) == job_key(small_job())

    def test_rate_and_size_sugar(self):
        config = build_config({"size": 4, "rate": 0.25})
        assert config.width == 4 and config.height == 4
        assert config.injection_rate == 0.25

    def test_sweep_expands_rate_seed_grid(self):
        request = normalize_request(
            {
                "kind": "sweep",
                "base": dict(BASE),
                "rates": [0.05, 0.1],
                "seeds": [1, 2, 3],
            }
        )
        assert request.kind == "sweep"
        assert len(request.jobs) == 6
        keys = {job_key(job) for job in request.jobs}
        assert len(keys) == 6  # all distinct points
        assert job_key(small_job(injection_rate=0.05, seed=1)) in keys

    def test_campaign_sampled_schedule(self):
        request = normalize_request(
            {
                "kind": "campaign",
                "config": dict(BASE),
                "mtbf": 500.0,
                "faults": 1,
            }
        )
        (job,) = request.jobs
        assert job.schedule is not None
        assert job_key(job) != job_key(small_job())

    @pytest.mark.parametrize(
        "payload, match",
        [
            ([1, 2], "JSON object"),
            ({"kind": "nope"}, "unknown request kind"),
            ({"config": {"bogus_field": 1}}, "unknown config field"),
            ({"config": {"width": -3}}, "bad config"),
            (
                {"kind": "campaign", "config": {}, "schedule": [], "mtbf": 1.0},
                "not both",
            ),
            ({"kind": "campaign", "config": {}}, "needs a 'schedule'"),
            ({"kind": "sweep", "base": {}, "rates": []}, "non-empty list"),
        ],
    )
    def test_malformed_requests_rejected(self, payload, match):
        with pytest.raises(RequestError, match=match):
            normalize_request(payload)

    def test_oversized_request_rejected(self):
        with pytest.raises(RequestError, match="split it"):
            normalize_request(
                {
                    "kind": "sweep",
                    "base": dict(BASE),
                    "rates": [i / 1000 for i in range(1, 30)],
                    "seeds": list(range(10)),
                }
            )
        assert 29 * 10 > MAX_JOBS_PER_REQUEST

    def test_event_round_trip(self):
        event = {"event": "queued", "key": "k", "seq": 3}
        line = encode_event(event)
        assert line.endswith(b"\n")
        assert decode_event(line) == event


class TestBrokerDedupe:
    def test_n_threads_one_execution_identical_results(self):
        """Satellite: the same-key race — N concurrent submissions call
        the job function exactly once and all see the same record."""
        gate = threading.Event()
        calls: list[str] = []
        calls_lock = threading.Lock()

        def counting_fn(job):
            with calls_lock:
                calls.append(job_key(job))
            gate.wait(timeout=30)
            return {"answer": 42}

        n = 8
        barrier = threading.Barrier(n)
        tickets = [None] * n
        with JobBroker(workers=1, policy=FAST, job_fn=counting_fn) as broker:

            def submit(slot: int) -> None:
                barrier.wait(timeout=10)
                tickets[slot] = broker.submit(small_job())

            threads = [
                threading.Thread(target=submit, args=(slot,))
                for slot in range(n)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            gate.set()
            records = [t.future.result(timeout=30) for t in tickets]

            assert len(calls) == 1, f"{len(calls)} executions for {n} submits"
            assert records == [{"answer": 42}] * n
            assert broker.simulations_run == 1
            assert broker.coalesced == n - 1
            assert sum(1 for t in tickets if not t.coalesced) == 1

    def test_resubmission_after_settle_served_from_memory(self):
        with JobBroker(
            workers=1, policy=FAST, job_fn=lambda job: {"v": 1}
        ) as broker:
            first = broker.submit(small_job())
            assert first.future.result(timeout=30) == {"v": 1}
            again = broker.submit(small_job())
            assert again.cached and not again.coalesced
            assert again.future.result(timeout=0) == {"v": 1}
            assert broker.simulations_run == 1

    def test_warm_cache_serves_without_simulating(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = small_job()
        cache.store(job_key(job), {"v": "warm"})
        with JobBroker(
            cache=cache, workers=1, policy=FAST, job_fn=lambda j: {"v": "cold"}
        ) as broker:
            ticket = broker.submit(job)
            assert ticket.cached
            assert ticket.future.result(timeout=30) == {"v": "warm"}
            assert broker.simulations_run == 0
        assert cache.hits == 1

    def test_distinct_jobs_both_execute(self):
        with JobBroker(
            workers=1,
            policy=FAST,
            job_fn=lambda job: {"seed": job.config.seed},
        ) as broker:
            a = broker.submit(small_job(seed=1))
            b = broker.submit(small_job(seed=2))
            assert a.future.result(timeout=30) == {"seed": 1}
            assert b.future.result(timeout=30) == {"seed": 2}
            assert broker.simulations_run == 2
            assert broker.coalesced == 0

    def test_completed_simulation_stored_in_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        with JobBroker(
            cache=cache, workers=1, policy=FAST, job_fn=lambda j: {"v": 9}
        ) as broker:
            ticket = broker.submit(small_job())
            assert ticket.future.result(timeout=30) == {"v": 9}
        assert cache.lookup(job_key(small_job())) == {"v": 9}
        assert cache.stores == 1


class TestBrokerAdmission:
    def test_saturation_sheds_and_recovers(self):
        gate = threading.Event()

        def gated_fn(job):
            gate.wait(timeout=30)
            return {"seed": job.config.seed}

        with JobBroker(
            workers=1, policy=FAST, max_inflight=1, job_fn=gated_fn
        ) as broker:
            first = broker.submit(small_job(seed=1))
            with pytest.raises(SaturatedError) as excinfo:
                broker.submit(small_job(seed=2))
            assert excinfo.value.in_flight == 1
            assert excinfo.value.limit == 1
            assert excinfo.value.retry_after > 0
            assert broker.shed == 1
            # A full server still coalesces: identical keys don't count
            # against the in-flight limit.
            dup = broker.submit(small_job(seed=1))
            assert dup.coalesced
            gate.set()
            assert first.future.result(timeout=30) == {"seed": 1}
            # Capacity freed: the shed job now admits.
            retry = broker.submit(small_job(seed=2))
            assert retry.future.result(timeout=30) == {"seed": 2}

    def test_submit_request_reports_partial_shed(self):
        gate = threading.Event()

        def gated_fn(job):
            gate.wait(timeout=30)
            return {"ok": True}

        with JobBroker(
            workers=1, policy=FAST, max_inflight=2, job_fn=gated_fn
        ) as broker:
            reply = broker.submit_request(
                {
                    "kind": "sweep",
                    "base": dict(BASE),
                    "rates": [0.05, 0.1, 0.15, 0.2],
                    "seeds": [1],
                }
            )
            assert reply["shed_after"] == 2
            assert reply["total_jobs"] == 4
            assert len(reply["jobs"]) == 2
            gate.set()

    def test_max_inflight_must_be_positive(self):
        with pytest.raises(ValueError):
            JobBroker(max_inflight=0)


class TestBrokerEvents:
    def test_event_sequence_and_resumable_reads(self):
        with JobBroker(
            workers=1, policy=FAST, job_fn=lambda job: {"v": 1}
        ) as broker:
            ticket = broker.submit(small_job())
            ticket.future.result(timeout=30)
            events, terminal = broker.events_after(ticket.key, -1, timeout=5.0)
            kinds = [e["event"] for e in events]
            assert kinds[0] == "queued"
            assert kinds[-1] == "completed"
            assert "running" in kinds
            assert terminal
            seqs = [e["seq"] for e in events]
            assert seqs == sorted(seqs)
            assert all(e["key"] == ticket.key for e in events)
            # Resume past the end: empty batch, still terminal.
            tail, terminal = broker.events_after(
                ticket.key, seqs[-1], timeout=0.0
            )
            assert tail == [] and terminal
            # Resume mid-stream: only fresh events.
            middle, _ = broker.events_after(ticket.key, seqs[0], timeout=0.0)
            assert [e["seq"] for e in middle] == seqs[1:]

    def test_unknown_key_is_none(self):
        with JobBroker(workers=1, policy=FAST) as broker:
            assert broker.events_after("missing", -1, timeout=0.0) is None
            assert broker.entry_state("missing") is None
            assert broker.result("missing", timeout=0.0) is None

    def test_status_snapshot_shape(self):
        with JobBroker(
            workers=1, policy=FAST, job_fn=lambda job: {"v": 1}
        ) as broker:
            broker.submit(small_job()).future.result(timeout=30)
            status = broker.status()
            assert status["mode"] == "inline"
            assert status["simulations_run"] == 1
            assert status["requests"] == 1
            assert status["in_flight"] == []
            assert status["in_flight_limit"] == 64
            assert set(status["execution"]) >= {
                "retries",
                "failures",
                "worker_crashes",
            }
            assert status["cache"] is None
            assert status["worker_liveness"] == []

    def test_shutdown_fails_pending_jobs(self):
        gate = threading.Event()

        def gated_fn(job):
            gate.wait(timeout=30)
            return {"ok": True}

        broker = JobBroker(workers=1, policy=FAST, job_fn=gated_fn)
        broker.start()
        blocked = broker.submit(small_job(seed=1))
        queued = broker.submit(small_job(seed=2))
        gate.set()
        broker.close()
        # The running job may or may not settle before close; the queued
        # one must resolve one way or the other — never hang.
        for ticket in (blocked, queued):
            try:
                ticket.future.result(timeout=5)
            except RuntimeError as exc:
                assert "shut down" in str(exc)
        with pytest.raises(RuntimeError, match="closed"):
            broker.submit(small_job(seed=3))


class TestInlineRetryRecovery:
    def test_transient_chaos_retried_inline(self):
        chaos = ChaosConfig(
            rules=(ChaosRule(kind="transient", indices=None, attempts=(0,)),)
        )
        with JobBroker(
            workers=1,
            policy=RetryPolicy(max_retries=2, backoff_base=0.0),
            chaos=chaos,
        ) as broker:
            ticket = broker.submit(small_job())
            record = ticket.future.result(timeout=120)
        assert record == execute_job(small_job())
        assert broker.stats.retries >= 1
        events, _ = broker.events_after(ticket.key, -1, timeout=0.0)
        kinds = [e["event"] for e in events]
        assert "retry" in kinds
        assert kinds[-1] == "completed"


class TestPooledCrashRecoveryAcceptance:
    def test_concurrent_dedupe_with_injected_crashes(self, tmp_path):
        """The PR's acceptance bar, in-process: two identical + one
        distinct concurrent submissions on a crash-chaos worker pool run
        exactly two simulations, recover every injected crash, and hand
        all waiters records bit-identical to a clean serial run."""
        chaos = ChaosConfig(rules=(ChaosRule(kind="crash", indices=None),))
        baseline_a = execute_job(small_job(seed=3))
        baseline_b = execute_job(small_job(seed=4))
        with JobBroker(
            cache=ResultCache(tmp_path),
            workers=2,
            policy=RetryPolicy(max_retries=3, backoff_base=0.0),
            chaos=chaos,
            job_fn=serve_execute_job,
        ) as broker:
            assert broker.mode == "pooled"
            barrier = threading.Barrier(3)
            tickets = [None] * 3
            jobs = [
                small_job(seed=3),
                small_job(seed=3),
                small_job(seed=4),
            ]

            def submit(slot: int) -> None:
                barrier.wait(timeout=10)
                tickets[slot] = broker.submit(jobs[slot])

            threads = [
                threading.Thread(target=submit, args=(slot,))
                for slot in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            records = [t.future.result(timeout=180) for t in tickets]

            assert records[0] == records[1] == baseline_a
            assert records[2] == baseline_b
            assert broker.simulations_run == 2
            assert broker.coalesced == 1
            assert (
                broker.stats.worker_crashes + broker.stats.retries >= 2
            ), "injected crashes were not recovered"


class HttpFixture:
    """One gated synthetic broker behind a real HTTP server."""

    def __init__(self, tmp_path=None, **broker_kwargs):
        self.gate = threading.Event()
        self.gate.set()  # default: jobs complete immediately

        def job_fn(job):
            self.gate.wait(timeout=30)
            return {"seed": job.config.seed, "rate": job.config.injection_rate}

        kwargs = {"workers": 1, "policy": FAST, "job_fn": job_fn}
        kwargs.update(broker_kwargs)
        self.broker = JobBroker(**kwargs)
        self.server = ServerThread(self.broker)

    def __enter__(self):
        self.broker.start()
        url = self.server.__enter__()
        return self, ServeClient(url)

    def __exit__(self, *exc):
        self.server.__exit__(*exc)
        self.broker.close()


class TestHttpTransport:
    def test_health_status_submit_result_roundtrip(self):
        with HttpFixture() as (fixture, client):
            assert client.healthy()
            reply = client.submit(
                {"kind": "experiment", "config": dict(BASE, seed=5)}
            )
            assert reply["total_jobs"] == 1
            (jobinfo,) = reply["jobs"]
            record = client.result(jobinfo["key"], timeout=30)
            assert record == {"seed": 5, "rate": 0.08}
            status = client.status()
            assert status["simulations_run"] == 1
            assert status["mode"] == "inline"

    def test_identical_http_submissions_coalesce(self):
        with HttpFixture() as (fixture, client):
            fixture.gate.clear()
            request = {"kind": "experiment", "config": dict(BASE, seed=7)}
            first = client.submit(request)
            second = client.submit(request)
            assert first["jobs"][0]["key"] == second["jobs"][0]["key"]
            assert second["jobs"][0]["coalesced"]
            fixture.gate.set()
            record = client.result(first["jobs"][0]["key"], timeout=30)
            assert record["seed"] == 7
            assert client.status()["simulations_run"] == 1

    def test_event_stream_over_http(self):
        with HttpFixture() as (fixture, client):
            reply = client.submit(
                {"kind": "experiment", "config": dict(BASE, seed=9)}
            )
            key = reply["jobs"][0]["key"]
            client.result(key, timeout=30)
            events = list(client.events(key))
            kinds = [e["event"] for e in events]
            assert kinds[0] == "queued"
            assert kinds[-1] == "completed"
            assert all(e["key"] == key for e in events)
            # wait() replays the stream and returns the record.
            assert client.wait(key, timeout=30)["seed"] == 9

    def test_bad_requests_rejected_with_400(self):
        with HttpFixture() as (fixture, client):
            with pytest.raises(RequestRejected, match="unknown config field"):
                client.submit({"config": {"bogus": 1}})
            with pytest.raises(RequestRejected, match="unknown request kind"):
                client.submit({"kind": "nope"})

    def test_unknown_key_404(self):
        from repro.serve.client import ServeClientError

        with HttpFixture() as (fixture, client):
            with pytest.raises(ServeClientError) as excinfo:
                client.result("feedfacedeadbeef", timeout=1)
            assert excinfo.value.status == 404
            with pytest.raises(ServeClientError) as excinfo:
                list(client.events("feedfacedeadbeef"))
            assert excinfo.value.status == 404

    def test_saturated_http_submission_sheds_503(self):
        with HttpFixture(max_inflight=1) as (fixture, client):
            fixture.gate.clear()
            client.submit({"kind": "experiment", "config": dict(BASE, seed=1)})
            with pytest.raises(ServerSaturated) as excinfo:
                client.submit(
                    {"kind": "experiment", "config": dict(BASE, seed=2)}
                )
            assert excinfo.value.retry_after > 0
            fixture.gate.set()

    def test_result_timeout_returns_202_state(self):
        with HttpFixture() as (fixture, client):
            fixture.gate.clear()
            reply = client.submit(
                {"kind": "experiment", "config": dict(BASE, seed=1)}
            )
            key = reply["jobs"][0]["key"]
            with pytest.raises(TimeoutError, match="not settled"):
                client.result(key, timeout=0.5)
            fixture.gate.set()
            assert client.result(key, timeout=30)["seed"] == 1
