"""Cross-backend conformance grid: ``backend="soa"`` vs the reference.

The struct-of-arrays backend's contract is *bit-identity* on its
supported envelope, not statistical closeness: every cell of the
router x routing x traffic x scheduler grid must produce exactly the
same result record, packet accounting and scheduler telemetry as the
object-model run of the same config.  Outside the envelope the backend
must refuse loudly (``BackendUnsupportedError``) while leaving the
object backend's behaviour untouched — a fault-injected run falls back
to ``backend="object"`` and keeps its reference results.

Golden cells additionally pin absolute numbers for one cell per router
so that a *coordinated* drift of both backends (e.g. a shared layout
bug) cannot slip through the differential check.
"""

from __future__ import annotations

import itertools
from dataclasses import replace

import pytest

from repro.core.config import SimulationConfig
from repro.core.simulator import run_simulation
from repro.core.soa import BackendUnsupportedError, ensure_supported
from repro.core.types import NodeId
from repro.faults import Component, ComponentFault, FaultEvent, FaultSchedule
from repro.harness.export import result_record

ROUTERS = ("roco", "generic")
ROUTINGS = ("xy", "xy-yx", "adaptive")
TRAFFICS = ("uniform", "transpose", "self_similar")
SCHEDULERS = (False, True)  # full_sweep

GRID = sorted(itertools.product(ROUTERS, ROUTINGS, TRAFFICS, SCHEDULERS))


def grid_config(router: str, routing: str, traffic: str, **overrides):
    params = {
        "width": 4,
        "height": 4,
        "router": router,
        "routing": routing,
        "traffic": traffic,
        "injection_rate": 0.25,
        "warmup_packets": 30,
        "measure_packets": 150,
        "max_cycles": 20_000,
        "seed": 11,
    }
    params.update(overrides)
    return SimulationConfig(**params)


def full_record(result) -> dict:
    """The exported record plus every field it deliberately omits.

    Packet accounting and scheduler telemetry are not part of the
    exported schema, but the backends must agree on them all the same —
    the SoA engine replicates the counters, not just the headline
    metrics.
    """
    record = result_record(result)
    record.update(
        generated_packets=result.generated_packets,
        total_delivered=result.total_delivered,
        total_dropped=result.total_dropped,
        drops_by_reason=sorted(
            (reason.value, count)
            for reason, count in result.drops_by_reason.items()
        ),
        scheduler=(
            result.scheduler.cycles,
            result.scheduler.router_steps,
            result.scheduler.router_slots,
            result.scheduler.wakeups,
            result.scheduler.sleeps,
            result.scheduler.full_sweep,
        ),
    )
    return record


class TestConformanceGrid:
    @pytest.mark.parametrize(
        "router,routing,traffic,full_sweep",
        GRID,
        ids=[f"{r}-{m}-{t}-{'sweep' if fs else 'active'}" for r, m, t, fs in GRID],
    )
    def test_cell_is_bit_identical(self, router, routing, traffic, full_sweep):
        config = grid_config(router, routing, traffic)
        reference = run_simulation(config, full_sweep=full_sweep)
        fast = run_simulation(
            replace(config, backend="soa"), full_sweep=full_sweep
        )
        assert full_record(fast) == full_record(reference)


#: Absolute pins for one cell per router (active scheduler), computed
#: from the object-model reference.  A shared-drift regression moves
#: these even when the differential grid stays green.
GOLDEN_KEYS = (
    "average_latency",
    "average_hops",
    "delivered_packets",
    "cycles",
    "total_delivered",
    "total_dropped",
)
GOLDEN = {
    ("roco", "xy", "uniform"): {
        "average_latency": 12.386666666666667,
        "average_hops": 2.533333333333333,
        "delivered_packets": 150,
        "cycles": 205,
        "total_delivered": 180,
        "total_dropped": 0,
    },
    ("generic", "adaptive", "transpose"): {
        "average_latency": 19.026666666666667,
        "average_hops": 3.1133333333333333,
        "delivered_packets": 150,
        "cycles": 231,
        "total_delivered": 180,
        "total_dropped": 0,
    },
}


class TestGoldenCells:
    @pytest.mark.parametrize("cell", sorted(GOLDEN), ids="-".join)
    def test_golden_stats(self, cell):
        router, routing, traffic = cell
        config = replace(grid_config(router, routing, traffic), backend="soa")
        record = full_record(run_simulation(config))
        golden = GOLDEN[cell]
        assert {key: record[key] for key in GOLDEN_KEYS} == golden


class TestEnvelopeRejection:
    """Outside the envelope: a clean, typed error — never a wrong answer."""

    def fault(self):
        return ComponentFault(node=NodeId(1, 1), component=Component.SA)

    def test_static_faults_raise(self):
        config = replace(grid_config("roco", "xy", "uniform"), backend="soa")
        with pytest.raises(BackendUnsupportedError, match="use backend='object'"):
            run_simulation(config, faults=[self.fault()])

    def test_fault_schedule_raises(self):
        config = replace(grid_config("roco", "xy", "uniform"), backend="soa")
        schedule = FaultSchedule([FaultEvent(cycle=10, fault=self.fault())])
        with pytest.raises(BackendUnsupportedError, match="fault schedule"):
            run_simulation(config, schedule=schedule)

    def test_empty_fault_inputs_are_fine(self):
        config = replace(grid_config("roco", "xy", "uniform"), backend="soa")
        result = run_simulation(config, faults=[], schedule=FaultSchedule([]))
        assert result.delivered_packets > 0

    def test_audit_raises_and_points_at_the_bridge(self):
        config = replace(
            grid_config("roco", "xy", "uniform"), backend="soa", audit=True
        )
        with pytest.raises(BackendUnsupportedError, match="SoAState"):
            run_simulation(config)

    def test_unvectorized_router_raises(self):
        config = replace(
            grid_config("roco", "xy", "uniform"),
            router="path_sensitive",
            backend="soa",
        )
        with pytest.raises(BackendUnsupportedError, match="path_sensitive"):
            run_simulation(config)

    def test_error_carries_feature_tag(self):
        with pytest.raises(BackendUnsupportedError) as excinfo:
            ensure_supported(
                grid_config("roco", "xy", "uniform"), faults=[self.fault()]
            )
        assert excinfo.value.feature == "static fault injection"

    def test_object_backend_unaffected_by_faults(self):
        """The fallback path: same faulty config, object backend, works —
        and produces the same results whether or not the SoA cell ever
        ran (the backends share no mutable state)."""
        config = grid_config("roco", "xy", "uniform")
        faults = [self.fault()]
        before = run_simulation(config, faults=faults)
        with pytest.raises(BackendUnsupportedError):
            run_simulation(replace(config, backend="soa"), faults=faults)
        after = run_simulation(config, faults=faults)
        assert full_record(after) == full_record(before)


class TestDispatchAndCacheKey:
    def test_config_validates_backend_name(self):
        with pytest.raises(ValueError):
            grid_config("roco", "xy", "uniform", backend="vector")

    def test_cache_key_distinguishes_backends(self):
        from repro.harness.parallel import config_payload

        config = grid_config("roco", "xy", "uniform")
        obj = config_payload(config)
        soa = config_payload(replace(config, backend="soa"))
        assert obj != soa
        assert soa["backend"] == "soa"

    def test_cache_key_stable_for_object_backend(self):
        """Pre-SoA cache entries stay valid: the default backend adds no
        key, so object-backend payloads hash exactly as before."""
        from repro.harness.parallel import config_payload

        assert "backend" not in config_payload(grid_config("roco", "xy", "uniform"))
