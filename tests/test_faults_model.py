"""Unit tests for the fault taxonomy and injector (Table 3, Section 4)."""

import random

import pytest

from repro.core.config import SimulationConfig
from repro.core.network import Network
from repro.core.types import NodeId
from repro.faults import (
    CLASSIFICATION,
    CRITICAL_FAULT_COMPONENTS,
    NONCRITICAL_FAULT_COMPONENTS,
    Centricity,
    Component,
    ComponentFault,
    Pathway,
    Regime,
    apply_faults,
    is_recoverable,
    random_faults,
)
from repro.faults.recovery import recovery_mechanism
from repro.routers.roco.path_set import COLUMN, ROW


class TestTable3Classification:
    def test_every_component_classified(self):
        assert set(CLASSIFICATION) == set(Component)

    def test_per_packet_components(self):
        """RC and VA only touch header flits (Section 4.1)."""
        assert CLASSIFICATION[Component.RC].regime is Regime.PER_PACKET
        assert CLASSIFICATION[Component.VA].regime is Regime.PER_PACKET
        for c in (Component.SA, Component.BUFFER, Component.CROSSBAR):
            assert CLASSIFICATION[c].regime is Regime.PER_FLIT

    def test_centricity(self):
        assert CLASSIFICATION[Component.RC].centricity is Centricity.MESSAGE
        assert CLASSIFICATION[Component.BUFFER].centricity is Centricity.MESSAGE
        assert CLASSIFICATION[Component.MUX_DEMUX].centricity is Centricity.MESSAGE
        assert CLASSIFICATION[Component.VA].centricity is Centricity.ROUTER
        assert CLASSIFICATION[Component.SA].centricity is Centricity.ROUTER
        assert CLASSIFICATION[Component.CROSSBAR].centricity is Centricity.ROUTER

    def test_critical_pathway(self):
        assert CLASSIFICATION[Component.CROSSBAR].pathway is Pathway.CRITICAL
        assert CLASSIFICATION[Component.MUX_DEMUX].pathway is Pathway.CRITICAL
        for c in (Component.RC, Component.VA, Component.SA, Component.BUFFER):
            assert CLASSIFICATION[c].pathway is Pathway.NON_CRITICAL

    def test_module_blocking_components(self):
        """VA, crossbar and MUX/DEMUX faults isolate a RoCo module."""
        blocking = {
            c for c in Component if CLASSIFICATION[c].blocks_roco_module
        }
        assert blocking == {Component.VA, Component.CROSSBAR, Component.MUX_DEMUX}

    def test_fault_populations_are_disjoint_and_complete(self):
        assert set(CRITICAL_FAULT_COMPONENTS) | set(
            NONCRITICAL_FAULT_COMPONENTS
        ) == set(Component)
        assert not set(CRITICAL_FAULT_COMPONENTS) & set(NONCRITICAL_FAULT_COMPONENTS)


class TestRecoveryMapping:
    def test_only_roco_recovers(self):
        for component in Component:
            assert not is_recoverable("generic", component)
            assert not is_recoverable("path_sensitive", component)

    def test_roco_recycling_set(self):
        recoverable = {c for c in Component if is_recoverable("roco", c)}
        assert recoverable == {Component.RC, Component.SA, Component.BUFFER}

    def test_mechanism_descriptions(self):
        assert "double routing" in recovery_mechanism(Component.RC)
        assert "virtual queuing" in recovery_mechanism(Component.BUFFER).lower()
        assert "VA" in recovery_mechanism(Component.SA)
        assert "isolation" in recovery_mechanism(Component.CROSSBAR)


def _nodes(k=4):
    return [NodeId(x, y) for y in range(k) for x in range(k)]


class TestRandomFaults:
    def test_distinct_routers(self):
        faults = random_faults(_nodes(), 5, random.Random(3), critical=True)
        assert len({f.node for f in faults}) == 5

    def test_population_respects_class(self):
        rng = random.Random(3)
        for f in random_faults(_nodes(), 8, rng, critical=True):
            assert f.component in CRITICAL_FAULT_COMPONENTS
        for f in random_faults(_nodes(), 8, rng, critical=False):
            assert f.component in NONCRITICAL_FAULT_COMPONENTS

    def test_too_many_faults_rejected(self):
        with pytest.raises(ValueError):
            random_faults(_nodes(2), 5, random.Random(0), critical=True)

    def test_exclusion(self):
        exclude = {NodeId(0, 0)}
        faults = random_faults(
            _nodes(2), 3, random.Random(0), critical=True, exclude=exclude
        )
        assert NodeId(0, 0) not in {f.node for f in faults}

    def test_deterministic_for_seed(self):
        a = random_faults(_nodes(), 4, random.Random(9), critical=False)
        b = random_faults(_nodes(), 4, random.Random(9), critical=False)
        assert a == b


class TestApplyFaults:
    def _network(self, router):
        return Network(SimulationConfig(width=4, height=4, router=router))

    def test_generic_node_goes_offline(self):
        net = self._network("generic")
        apply_faults(net, [ComponentFault(NodeId(1, 1), Component.RC)])
        assert net.routers[NodeId(1, 1)].dead
        assert net.has_faults

    def test_roco_critical_fault_kills_one_module(self):
        net = self._network("roco")
        fault = ComponentFault(NodeId(2, 2), Component.CROSSBAR, module=ROW)
        apply_faults(net, [fault])
        router = net.routers[NodeId(2, 2)]
        assert router.row.dead and not router.column.dead
        assert not router.dead

    def test_roco_rc_fault_sets_double_routing(self):
        net = self._network("roco")
        apply_faults(net, [ComponentFault(NodeId(0, 3), Component.RC, module=COLUMN)])
        assert net.routers[NodeId(0, 3)].column.rc_faulty

    def test_roco_sa_fault_degrades(self):
        net = self._network("roco")
        apply_faults(net, [ComponentFault(NodeId(3, 0), Component.SA, module=ROW)])
        assert net.routers[NodeId(3, 0)].row.sa_degraded

    def test_roco_buffer_fault_enables_virtual_queuing(self):
        net = self._network("roco")
        fault = ComponentFault(
            NodeId(1, 2), Component.BUFFER, module=COLUMN, vc_position=2
        )
        apply_faults(net, [fault])
        router = net.routers[NodeId(1, 2)]
        faulty = [vc for vc in router.column.all_vcs() if vc.faulty]
        assert len(faulty) == 1
        assert faulty[0].effective_depth == 1

    def test_no_faults_is_noop(self):
        net = self._network("roco")
        apply_faults(net, [])
        assert not net.has_faults
