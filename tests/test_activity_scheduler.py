"""Differential validation of the activity-driven scheduling core.

The network steps only *active* routers by default; ``full_sweep=True``
restores the original step-every-router schedule.  The two must be
observationally indistinguishable: every exported result field —
latency, throughput, energy, contention, completion, drop counts —
must match bit-for-bit across traffic patterns, routing algorithms,
router architectures, fault sets and seeds.  These tests pin that
contract, plus the scheduler-specific behaviours that make it worth
having (dormant routers really do sleep) and the fault paths where
sleeping would be easiest to get wrong (bypassed routers forwarding
double-routed traffic, drain-timeout termination in faulty meshes).
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import SimulationConfig
from repro.core.simulator import Simulator, run_simulation
from repro.core.types import NodeId
from repro.faults import ComponentFault, random_faults
from repro.faults.model import Component
from repro.harness.export import result_record
from repro.routers.roco.path_set import COLUMN, ROW


def small_config(**overrides) -> SimulationConfig:
    defaults = dict(
        width=4,
        height=4,
        router="roco",
        routing="xy",
        traffic="uniform",
        injection_rate=0.1,
        seed=3,
        warmup_packets=30,
        measure_packets=120,
        max_cycles=20_000,
        fault_drop_timeout=100,
        drain_timeout=400,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def assert_equivalent(config: SimulationConfig, faults=None) -> None:
    """Run both schedulers and compare everything they report."""
    active = run_simulation(config, faults=faults)
    sweep = run_simulation(config, faults=faults, full_sweep=True)
    assert result_record(active) == result_record(sweep)
    assert active.cycles == sweep.cycles
    # The active scheduler must never exceed the sweep's work budget.
    assert active.scheduler.router_steps <= sweep.scheduler.router_steps
    assert sweep.scheduler.duty_cycle == 1.0


# ----------------------------------------------------------------------
# Fault-free grid: 3 routers x 3 routings x 2 traffics = 18 combos
# ----------------------------------------------------------------------

FAULT_FREE_GRID = [
    (router, routing, traffic)
    for router in ("generic", "path_sensitive", "roco")
    for routing in ("xy", "xy-yx", "adaptive")
    for traffic in ("uniform", "transpose")
]


@pytest.mark.parametrize("router,routing,traffic", FAULT_FREE_GRID)
def test_differential_equivalence_fault_free(router, routing, traffic):
    assert_equivalent(
        small_config(router=router, routing=routing, traffic=traffic)
    )


def test_differential_equivalence_across_seeds_and_rates():
    for seed, rate in ((11, 0.05), (12, 0.2), (13, 0.3)):
        assert_equivalent(small_config(seed=seed, injection_rate=rate))


# ----------------------------------------------------------------------
# Faulty grid: critical and non-critical populations, every router
# ----------------------------------------------------------------------


def fault_population(seed: int, count: int, critical: bool) -> list[ComponentFault]:
    nodes = [NodeId(x, y) for y in range(4) for x in range(4)]
    return random_faults(nodes, count, random.Random(seed), critical=critical)


FAULT_GRID = [
    (router, critical, count, seed)
    for router in ("generic", "path_sensitive", "roco")
    for critical, count, seed in ((True, 2, 21), (False, 3, 22))
]


@pytest.mark.parametrize("router,critical,count,seed", FAULT_GRID)
def test_differential_equivalence_under_faults(router, critical, count, seed):
    faults = fault_population(seed, count, critical)
    assert_equivalent(small_config(router=router, seed=seed), faults=faults)


def test_differential_equivalence_targeted_roco_faults():
    """Every RoCo recovery mechanism exercised under both schedulers."""
    targeted = [
        ComponentFault(NodeId(1, 1), Component.CROSSBAR, module=ROW),
        ComponentFault(NodeId(2, 2), Component.RC, module=COLUMN),
        ComponentFault(NodeId(2, 1), Component.SA, module=ROW),
        ComponentFault(NodeId(1, 2), Component.BUFFER, module=COLUMN, vc_position=2),
    ]
    assert_equivalent(small_config(seed=5), faults=targeted)


# ----------------------------------------------------------------------
# The scheduler actually sleeps (otherwise this is all pointless)
# ----------------------------------------------------------------------


def test_active_scheduler_skips_router_cycles():
    result = run_simulation(small_config())
    sched = result.scheduler
    assert not sched.full_sweep
    assert 0.0 < sched.duty_cycle < 1.0
    assert sched.skipped_router_cycles > 0
    assert sched.wakeups > 0
    assert sched.sleeps > 0


def test_full_sweep_steps_everything():
    result = run_simulation(small_config(), full_sweep=True)
    sched = result.scheduler
    assert sched.full_sweep
    assert sched.duty_cycle == 1.0
    assert sched.router_steps == 16 * sched.cycles


def test_scheduler_telemetry_not_in_result_record():
    """Scheduler counters describe *how* a run executed, not what it
    simulated, and legitimately differ between schedulers — they must
    stay out of the exported record the differential tests compare."""
    record = result_record(run_simulation(small_config()))
    assert not any("scheduler" in key or "duty" in key for key in record)


# ----------------------------------------------------------------------
# Fault paths: activity under module kills and hardware recycling
# ----------------------------------------------------------------------


def test_bypassed_rc_faulty_router_wakes_and_forwards():
    """Hardware Recycling: a router whose RC is dead still forwards
    double-routed flits — so it must keep waking for through-traffic."""
    victim = NodeId(1, 1)
    faults = [ComponentFault(victim, Component.RC, module=ROW)]
    # West-to-east traffic through row 1 must transit the victim's
    # faulty Row-Module.
    config = small_config(traffic="transpose", seed=9)
    active = run_simulation(config, faults=faults)
    sweep = run_simulation(config, faults=faults, full_sweep=True)
    assert result_record(active) == result_record(sweep)
    assert active.delivered_packets > 0

    sim = Simulator(small_config(traffic="transpose", seed=9), faults=faults)
    result = sim.run()
    router = sim.network.router_at(victim)
    assert router.modules[ROW].rc_faulty
    # The bypassed router was woken for forwarded traffic and went back
    # to sleep in between — it is not pinned awake, and not comatose.
    assert 0 < router.steps_taken < result.cycles


def test_critical_module_kill_keeps_activity_equivalent():
    """A dead Column-Module must not wedge the active scheduler: flits
    re-routed around the kill still wake exactly the routers they
    visit, and drops (if any) are identical under both schedulers."""
    faults = [
        ComponentFault(NodeId(1, 1), Component.CROSSBAR, module=COLUMN),
        ComponentFault(NodeId(2, 2), Component.VA, module=ROW),
    ]
    for routing in ("xy", "adaptive"):
        assert_equivalent(small_config(routing=routing, seed=17), faults=faults)


def test_drain_timeout_break_identical_in_faulty_nets():
    """The paper's inactivity termination rule (break, not deadlock
    error) must trip at the same cycle under both schedulers."""
    # Kill a whole column of generic routers: cross traffic wedges and
    # the run can only end via the drain-timeout break.
    faults = [
        ComponentFault(NodeId(2, y), Component.CROSSBAR) for y in range(4)
    ]
    config = small_config(
        router="generic", traffic="transpose", seed=23, drain_timeout=300
    )
    active = run_simulation(config, faults=faults)
    sweep = run_simulation(config, faults=faults, full_sweep=True)
    assert result_record(active) == result_record(sweep)
    assert active.cycles == sweep.cycles
    assert active.completion_probability < 1.0


# ----------------------------------------------------------------------
# Progress callback: post-step values (regression pin)
# ----------------------------------------------------------------------


def test_progress_reports_post_step_outstanding():
    """``progress(cycle, generated, outstanding)`` must report counts
    that include the cycle's own deliveries — the pre-fix code snapshot
    ``_outstanding`` before stepping, overstating the backlog."""
    sim = Simulator(small_config(seed=31))
    seen: list[tuple[int, int, int]] = []
    post_step: dict[int, int] = {}

    original_step = sim.network.step

    def instrumented_step(cycle):
        original_step(cycle)
        post_step[cycle] = sim._outstanding

    sim.network.step = instrumented_step
    sim.run(progress=lambda c, g, o: seen.append((c, g, o)), progress_every=1)

    assert seen, "progress callback never fired"
    for cycle, generated, outstanding in seen:
        assert outstanding == post_step[cycle]
        assert generated <= sim.config.total_packets
