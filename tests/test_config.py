"""Unit tests for simulation configuration."""

import pytest

from repro.core.config import RouterConfig, SimulationConfig
from repro.core.types import RoutingMode


class TestRouterConfig:
    def test_paper_buffer_depths(self):
        assert RouterConfig.for_architecture("generic").buffer_depth == 4
        assert RouterConfig.for_architecture("path_sensitive").buffer_depth == 5
        assert RouterConfig.for_architecture("roco").buffer_depth == 5

    def test_equal_total_buffering(self):
        """The paper's fairness constraint: 60 flits per router."""
        generic = RouterConfig.for_architecture("generic")
        roco = RouterConfig.for_architecture("roco")
        assert 5 * generic.vcs_per_port * generic.buffer_depth == 60
        assert 4 * roco.vcs_per_port * roco.buffer_depth == 60

    def test_overrides(self):
        cfg = RouterConfig.for_architecture("roco", vcs_per_port=4)
        assert cfg.vcs_per_port == 4
        assert cfg.buffer_depth == 5

    def test_unknown_architecture(self):
        with pytest.raises(ValueError):
            RouterConfig.for_architecture("torus3000")


class TestSimulationConfig:
    def test_defaults_follow_architecture(self):
        cfg = SimulationConfig(router="generic")
        assert cfg.router_config.buffer_depth == 4

    def test_routing_string_coerced(self):
        cfg = SimulationConfig(routing="xy-yx")
        assert cfg.routing is RoutingMode.XY_YX

    def test_packet_rate(self):
        cfg = SimulationConfig(injection_rate=0.2, flits_per_packet=4)
        assert cfg.packet_injection_rate == pytest.approx(0.05)

    def test_num_nodes(self):
        assert SimulationConfig(width=8, height=8).num_nodes == 64
        assert SimulationConfig(width=4, height=6).num_nodes == 24

    def test_total_packets(self):
        cfg = SimulationConfig(warmup_packets=10, measure_packets=20)
        assert cfg.total_packets == 30

    @pytest.mark.parametrize(
        "bad",
        [
            {"width": 1},
            {"height": 0},
            {"injection_rate": -0.1},
            {"injection_rate": 1.5},
            {"flits_per_packet": 0},
            {"measure_packets": 0},
            {"warmup_packets": -1},
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            SimulationConfig(**bad)

    def test_zero_warmup_is_legal(self):
        cfg = SimulationConfig(warmup_packets=0, measure_packets=20)
        assert cfg.total_packets == 20

    def test_audit_defaults_off(self):
        assert SimulationConfig().audit is False
        assert SimulationConfig(audit=True).audit is True
