"""Unit tests for the energy model."""

import pytest

from repro.core.statistics import ActivityCounters
from repro.energy import EnergyModel, EnergyReport, PROFILES, profile_for
from repro.energy.profiles import CROSSBAR_SCALE, CROSSPOINTS, VA_ARBITER_WIDTH


class TestProfiles:
    def test_all_architectures_present(self):
        assert set(PROFILES) == {"generic", "path_sensitive", "roco"}

    def test_structural_ordering(self):
        """Smaller crossbars and arbiters must cost less (Section 5.2)."""
        g, p, r = (PROFILES[k] for k in ("generic", "path_sensitive", "roco"))
        assert r.crossbar_traversal < p.crossbar_traversal < g.crossbar_traversal
        assert r.va_request < p.va_request < g.va_request
        assert r.leakage_per_cycle < p.leakage_per_cycle < g.leakage_per_cycle

    def test_buffers_identical_across_designs(self):
        """The paper equalises buffering, so per-access energy matches."""
        writes = {p.buffer_write for p in PROFILES.values()}
        reads = {p.buffer_read for p in PROFILES.values()}
        assert len(writes) == 1 and len(reads) == 1

    def test_crosspoint_counts(self):
        assert CROSSPOINTS == {"generic": 25, "path_sensitive": 8, "roco": 4}

    def test_va_widths_match_figure2(self):
        assert VA_ARBITER_WIDTH["generic"] == 15  # 5v:1 for v = 3
        assert VA_ARBITER_WIDTH["roco"] == 6  # 2v:1 for v = 3

    def test_unknown_architecture(self):
        with pytest.raises(ValueError):
            profile_for("optical")

    def test_energies_positive(self):
        for profile in PROFILES.values():
            assert profile.buffer_write > 0
            assert profile.crossbar_traversal > 0
            assert profile.leakage_per_cycle > 0


class TestAccounting:
    def test_dynamic_energy_linear_in_activity(self):
        model = EnergyModel("roco", num_routers=16)
        single = ActivityCounters(buffer_writes=1)
        double = ActivityCounters(buffer_writes=2)
        assert model.dynamic_energy(double) == pytest.approx(
            2 * model.dynamic_energy(single)
        )

    def test_leakage_scales_with_cycles_and_routers(self):
        model = EnergyModel("generic", num_routers=64)
        assert model.leakage_energy(100) == pytest.approx(
            100 * 64 * model.profile.leakage_per_cycle
        )

    def test_report_totals(self):
        model = EnergyModel("roco", num_routers=4)
        activity = ActivityCounters(buffer_writes=10, link_flits=10)
        report = model.report(activity, cycles=50, delivered_packets=5)
        assert report.total == pytest.approx(report.dynamic + report.leakage)
        assert report.per_packet == pytest.approx(report.total / 5)
        assert report.per_packet_nj == pytest.approx(report.per_packet * 1e9)

    def test_zero_packets_no_division_error(self):
        report = EnergyReport(dynamic=1.0, leakage=1.0, delivered_packets=0)
        assert report.per_packet == 0.0

    def test_every_activity_field_costs_energy(self):
        model = EnergyModel("generic", num_routers=1)
        base = model.dynamic_energy(ActivityCounters())
        assert base == 0.0
        for field in (
            "buffer_writes",
            "buffer_reads",
            "crossbar_traversals",
            "va_requests",
            "sa_requests",
            "link_flits",
            "early_ejections",
        ):
            activity = ActivityCounters(**{field: 1})
            assert model.dynamic_energy(activity) > 0, field

    def test_crossbar_scale_ordering(self):
        assert (
            CROSSBAR_SCALE["roco"]
            < CROSSBAR_SCALE["path_sensitive"]
            < CROSSBAR_SCALE["generic"]
        )
