"""Unit tests for the RoCo VC configuration (paper Table 1)."""

from collections import Counter

import pytest

from repro.core.types import Direction, RoutingMode
from repro.routers.roco.path_set import (
    ROW,
    table1_summary,
    vc_configuration,
)


def class_counts(mode):
    return Counter(spec.vc_class for spec in vc_configuration(mode))


class TestTable1Counts:
    @pytest.mark.parametrize("mode", list(RoutingMode))
    def test_twelve_vcs_in_four_path_sets(self, mode):
        config = vc_configuration(mode)
        assert len(config) == 12
        sets = Counter((spec.module, spec.port) for spec in config)
        assert all(count == 3 for count in sets.values())
        assert len(sets) == 4

    def test_xy_classes(self):
        assert class_counts(RoutingMode.XY) == Counter(
            dx=4, dy=3, txy=2, injxy=2, injyx=1
        )

    def test_xyyx_classes(self):
        assert class_counts(RoutingMode.XY_YX) == Counter(
            dx=3, dy=3, txy=2, tyx=2, injxy=1, injyx=1
        )

    def test_adaptive_classes(self):
        assert class_counts(RoutingMode.ADAPTIVE) == Counter(
            dx=3, dy=2, txy=3, tyx=2, injxy=1, injyx=1
        )

    def test_summary_matches_paper_layout(self):
        summary = table1_summary(RoutingMode.ADAPTIVE)
        assert summary["row_port1"] == ["dx", "tyx", "Injxy"]
        assert summary["row_port2"] == ["dx", "dx", "tyx"]
        assert summary["column_port1"] == ["dy", "txy", "Injyx"]
        assert summary["column_port2"] == ["dy", "txy", "txy"]

    def test_xy_summary(self):
        summary = table1_summary(RoutingMode.XY)
        assert summary["row_port1"] == ["dx", "dx", "Injxy"]
        assert summary["row_port2"] == ["dx", "dx", "Injxy"]


class TestClassPlacement:
    @pytest.mark.parametrize("mode", list(RoutingMode))
    def test_row_module_holds_x_classes(self, mode):
        for spec in vc_configuration(mode):
            if spec.module == ROW:
                assert spec.vc_class in ("dx", "tyx", "injxy")
            else:
                assert spec.vc_class in ("dy", "txy", "injyx")

    @pytest.mark.parametrize("mode", list(RoutingMode))
    def test_injection_vcs_accept_local_only(self, mode):
        for spec in vc_configuration(mode):
            if spec.vc_class.startswith("inj"):
                assert spec.accepts_from == (Direction.LOCAL,)
            else:
                assert Direction.LOCAL not in spec.accepts_from

    @pytest.mark.parametrize("mode", list(RoutingMode))
    def test_arrival_directions_match_class_dimension(self, mode):
        """dx/txy receive X-travelling flits; dy/tyx receive Y-travelling."""
        for spec in vc_configuration(mode):
            if spec.vc_class in ("dx", "txy"):
                assert set(spec.accepts_from) <= {Direction.EAST, Direction.WEST}
            if spec.vc_class in ("dy", "tyx"):
                assert set(spec.accepts_from) <= {Direction.NORTH, Direction.SOUTH}


class TestDeadlockDiscipline:
    def test_adaptive_has_escape_vcs(self):
        escapes = [s for s in vc_configuration(RoutingMode.ADAPTIVE) if s.escape]
        assert len(escapes) == 3
        assert {s.vc_class for s in escapes} == {"dx", "txy"}
        # The paper places them in the second path sets (Section 3.1).
        assert all(s.port == 1 for s in escapes)

    def test_xyyx_has_final_only_partition(self):
        finals = [s for s in vc_configuration(RoutingMode.XY_YX) if s.final_only]
        assert len(finals) == 1
        assert finals[0].vc_class == "dx"

    def test_xy_needs_no_discipline(self):
        for spec in vc_configuration(RoutingMode.XY):
            assert not spec.escape and not spec.final_only


class TestCoverage:
    @pytest.mark.parametrize("mode", list(RoutingMode))
    def test_every_flow_has_a_home(self, mode):
        """Every (arrival direction, class) flow the routing mode can
        produce must have at least one admitting VC."""
        config = vc_configuration(mode)
        needed = {("injxy", Direction.LOCAL), ("injyx", Direction.LOCAL)}
        for arrival in (Direction.EAST, Direction.WEST):
            needed.add(("dx", arrival))
            needed.add(("txy", arrival))
        if mode is not RoutingMode.XY:
            for arrival in (Direction.NORTH, Direction.SOUTH):
                needed.add(("tyx", arrival))
        for arrival in (Direction.NORTH, Direction.SOUTH):
            needed.add(("dy", arrival))
        for cls, arrival in needed:
            homes = [
                s
                for s in config
                if s.vc_class == cls and arrival in s.accepts_from
            ]
            assert homes, f"{mode}: no VC admits {cls} from {arrival.name}"

    @pytest.mark.parametrize("mode", list(RoutingMode))
    def test_non_escape_home_exists_for_continuing_flows(self, mode):
        """Escape VCs restrict routes, so plain dx/dy homes must exist."""
        config = vc_configuration(mode)
        for cls, arrivals in (
            ("dx", (Direction.EAST, Direction.WEST)),
            ("dy", (Direction.NORTH, Direction.SOUTH)),
        ):
            for arrival in arrivals:
                plain = [
                    s
                    for s in config
                    if s.vc_class == cls
                    and arrival in s.accepts_from
                    and not s.escape
                    and not s.final_only
                ]
                assert plain, f"{mode}: no unrestricted {cls} from {arrival.name}"
