"""Tests for the benchbed registry, runner, artifacts, and regression gate.

The contract under test (docs/benchmarking.md):

* discovery imports every ``benchmarks/bench_*.py`` and finds exactly
  the 21 registered benchmarks, idempotently;
* a quick-tier run of the same benchmark twice yields byte-identical
  comparison payloads (wall time and details excluded);
* artifacts round-trip through the schema validator, and the baseline
  comparison exits non-zero on regressions (wall slowdown, headline
  drift against the better-direction, missing benchmarks) while staying
  green on identical or improved runs.
"""

import copy
import json

import pytest

from repro.harness.benchbed import (
    REGISTRY,
    BenchbedError,
    BenchContext,
    BenchmarkRegistry,
    BenchSpec,
    BenchThresholdError,
    Outcome,
    Threshold,
    bench_main,
    benchmark,
    bootstrap_ci,
    compare_artifacts,
    comparison_payload,
    discover,
    load_artifacts,
    quick_scale,
    run_benchmark,
    validate_artifact,
    write_artifact,
)
from repro.harness.experiment import ExperimentScale

EXPECTED_BENCHMARKS = {
    "ablation_buffers",
    "ablation_lookahead",
    "ablation_mirror",
    "activity_core",
    "backend_soa",
    "dynamic_faults",
    "ext_packet_size",
    "ext_permutations",
    "ext_saturation",
    "ext_scaling",
    "ext_torus",
    "fig10_transpose",
    "fig11_critical_faults",
    "fig12_noncritical_faults",
    "fig13_energy",
    "fig14_pef",
    "fig2_arbiters",
    "fig3_contention",
    "fig8_uniform",
    "fig9_selfsimilar",
    "sharded_scaling",
    "table1_vc_config",
    "table2_matching",
}


def make_registry():
    registry = BenchmarkRegistry()

    @benchmark(
        "tiny_sim",
        headline="average_latency",
        unit="cycles",
        direction="lower",
        registry=registry,
    )
    def tiny_sim(ctx):
        from repro.core.config import SimulationConfig

        packets = ctx.pick(quick=40, full=120)
        result = ctx.run(
            SimulationConfig(
                width=4,
                height=4,
                router="roco",
                routing="xy",
                traffic="uniform",
                injection_rate=0.1,
                warmup_packets=10,
                measure_packets=packets,
                seed=11,
            )
        )
        return Outcome(result.average_latency)

    return registry


# ---------------------------------------------------------------------------
# Registry and decorator


def test_register_rejects_duplicate_name_across_modules():
    registry = BenchmarkRegistry()
    registry.register(
        BenchSpec("dup", lambda ctx: 1.0, headline="x", module="mod_a")
    )
    # Same module re-registering is the idempotent re-import case.
    registry.register(
        BenchSpec("dup", lambda ctx: 1.0, headline="x", module="mod_a")
    )
    with pytest.raises(BenchbedError, match="dup"):
        registry.register(
            BenchSpec("dup", lambda ctx: 1.0, headline="x", module="mod_b")
        )


def test_register_rejects_bad_direction():
    registry = BenchmarkRegistry()
    with pytest.raises(BenchbedError, match="direction"):

        @benchmark("bad", headline="x", direction="sideways", registry=registry)
        def bad(ctx):
            return 1.0


def test_select_filters_by_glob():
    registry = make_registry()

    @benchmark("other_thing", headline="x", registry=registry)
    def other(ctx):
        return 1.0

    assert [s.name for s in registry.select("tiny*")] == ["tiny_sim"]
    assert [s.name for s in registry.select(None)] == ["other_thing", "tiny_sim"]
    assert registry.select("nomatch*") == []


def test_outcome_coercion():
    assert Outcome.of(3).headline == 3.0
    assert Outcome.of(Outcome(2.0)).headline == 2.0
    with pytest.raises(BenchbedError, match="expected an"):
        Outcome.of("not a number")
    with pytest.raises(BenchbedError, match="expected an"):
        Outcome.of(True)


# ---------------------------------------------------------------------------
# Thresholds (the bench_activity_core satellite contract)


def test_threshold_floor_violation_is_a_contextual_assertion_error():
    threshold = Threshold("speedup", floor=1.5)
    assert threshold.check(1.6) == 1.6
    with pytest.raises(AssertionError) as excinfo:
        threshold.check(1.2, context="rate 0.1: 1.20x")
    message = str(excinfo.value)
    assert "speedup" in message
    assert "floor" in message
    assert "rate 0.1: 1.20x" in message
    assert isinstance(excinfo.value, BenchThresholdError)


def test_threshold_ceiling_violation():
    with pytest.raises(BenchThresholdError, match="ceiling"):
        Threshold("duty", ceiling=0.7).check(0.9)


# ---------------------------------------------------------------------------
# Discovery


def test_discovery_finds_all_registered_benchmarks():
    registry = discover()
    assert {spec.name for spec in registry.select(None)} >= EXPECTED_BENCHMARKS


def test_discovery_is_idempotent():
    before = {spec.name for spec in discover().select(None)}
    after = {spec.name for spec in discover().select(None)}
    assert before == after


# ---------------------------------------------------------------------------
# Runner determinism and artifact schema


def test_quick_run_is_deterministic_and_schema_valid(tmp_path):
    registry = make_registry()
    (spec,) = registry.select("tiny_sim")
    first = run_benchmark(spec, "quick")
    second = run_benchmark(spec, "quick")
    assert comparison_payload(first) == comparison_payload(second)
    assert first["deterministic"] is True
    assert first["tier"] == "quick"
    assert first["seed"] == 11
    assert first["cycles"] > 0
    assert first["cycles_per_second"] is not None
    assert first["scheduler"] is not None
    assert "duty_cycle" in first["scheduler"]
    validate_artifact(first)

    path = write_artifact(first, tmp_path)
    assert path.name == "BENCH_tiny_sim.json"
    loaded = load_artifacts(tmp_path)
    assert comparison_payload(loaded["tiny_sim"]) == comparison_payload(first)


def test_full_tier_records_all_repeats():
    registry = make_registry()
    (spec,) = registry.select("tiny_sim")
    artifact = run_benchmark(spec, "full", warmup=0, repeats=2)
    assert len(artifact["wall_time_s"]["samples"]) == 2
    assert len(artifact["headline_values"]) == 2
    assert artifact["deterministic"] is True


def test_profile_capture():
    registry = make_registry()
    (spec,) = registry.select("tiny_sim")
    artifact = run_benchmark(spec, "quick", profile=True)
    assert artifact["profile"], "expected cProfile hotspot rows"
    row = artifact["profile"][0]
    assert {"function", "calls", "cumulative_time_s"} <= set(row)


def test_unknown_tier_rejected():
    registry = make_registry()
    (spec,) = registry.select("tiny_sim")
    with pytest.raises(BenchbedError, match="tier"):
        run_benchmark(spec, "medium")


def test_validate_artifact_rejects_damage():
    registry = make_registry()
    (spec,) = registry.select("tiny_sim")
    artifact = run_benchmark(spec, "quick")

    missing = {k: v for k, v in artifact.items() if k != "headline"}
    with pytest.raises(ValueError, match="headline"):
        validate_artifact(missing)

    wrong_version = copy.deepcopy(artifact)
    wrong_version["schema_version"] = 999
    with pytest.raises(ValueError, match="schema version"):
        validate_artifact(wrong_version)

    bad_direction = copy.deepcopy(artifact)
    bad_direction["headline"]["direction"] = "sideways"
    with pytest.raises(ValueError, match="direction"):
        validate_artifact(bad_direction)

    no_samples = copy.deepcopy(artifact)
    no_samples["wall_time_s"]["samples"] = []
    with pytest.raises(ValueError, match="samples"):
        validate_artifact(no_samples)


def test_quick_scale_preserves_mesh_and_trims_grids():
    full = ExperimentScale(
        name="full",
        width=8,
        height=8,
        warmup_packets=500,
        measure_packets=5000,
        seeds=(1, 2, 3),
        rates=(0.05, 0.10, 0.20, 0.30),
        max_cycles=40_000,
    )
    quick = quick_scale(full)
    assert (quick.width, quick.height) == (8, 8)
    assert quick.rates == (0.05, 0.30)
    assert quick.seeds == (1,)
    assert quick.measure_packets <= 250
    assert quick.warmup_packets <= 60


def test_context_pick_and_scale():
    ctx = BenchContext("quick")
    assert ctx.quick
    assert ctx.pick(quick=1, full=2) == 1
    full = BenchContext("full")
    assert full.pick(quick=1, full=2) == 2


# ---------------------------------------------------------------------------
# Baseline comparison gate


def synthetic_artifact(
    name="synth",
    value=10.0,
    wall=1.0,
    direction="lower",
    tier="quick",
    floor=None,
    ceiling=None,
):
    return {
        "schema_version": 1,
        "name": name,
        "tier": tier,
        "headline": {
            "metric": "latency",
            "unit": "cycles",
            "direction": direction,
            "value": value,
            "floor": floor,
            "ceiling": ceiling,
        },
        "seed": 7,
        "config": {"simulations": 1},
        "details": {},
        "cycles": 1000,
        "deterministic": True,
        "headline_values": [value],
        "wall_time_s": {
            "warmup": 0,
            "repeats": 1,
            "samples": [wall],
            "min": wall,
            "mean": wall,
            "median": wall,
        },
        "cycles_per_second": 1000.0,
        "scheduler": None,
        "environment": {},
        "profile": None,
    }


def test_compare_identical_artifacts_passes():
    old = {"synth": synthetic_artifact()}
    report = compare_artifacts(old, copy.deepcopy(old))
    assert report.exit_code == 0
    assert report.deltas[0].status == "ok"


def test_compare_flags_2x_wall_slowdown():
    old = {"synth": synthetic_artifact(wall=1.0)}
    new = {"synth": synthetic_artifact(wall=2.0)}
    report = compare_artifacts(old, new)
    assert report.exit_code == 1
    (delta,) = report.deltas
    assert delta.status == "regression"
    assert delta.wall_delta == pytest.approx(1.0)
    assert any("wall time" in note for note in delta.notes)


def test_compare_ignores_wall_when_disabled():
    old = {"synth": synthetic_artifact(wall=1.0)}
    new = {"synth": synthetic_artifact(wall=2.0)}
    report = compare_artifacts(old, new, check_wall=False)
    assert report.exit_code == 0
    assert "wall" not in report.render().splitlines()[0]


def test_compare_headline_drift_is_direction_aware():
    old = {"synth": synthetic_artifact(value=10.0, direction="lower")}
    worse = {"synth": synthetic_artifact(value=10.5, direction="lower")}
    better = {"synth": synthetic_artifact(value=9.5, direction="lower")}
    assert compare_artifacts(old, worse).exit_code == 1
    improved = compare_artifacts(old, better)
    assert improved.exit_code == 0
    assert improved.deltas[0].status == "improved"

    old_up = {"synth": synthetic_artifact(value=10.0, direction="higher")}
    worse_up = {"synth": synthetic_artifact(value=9.5, direction="higher")}
    assert compare_artifacts(old_up, worse_up).exit_code == 1


def test_compare_small_drift_within_threshold_passes():
    old = {"synth": synthetic_artifact(value=10.0)}
    new = {"synth": synthetic_artifact(value=10.1)}
    report = compare_artifacts(old, new, headline_threshold=0.02)
    assert report.exit_code == 0


def test_compare_missing_and_new_benchmarks():
    old = {
        "kept": synthetic_artifact(name="kept"),
        "gone": synthetic_artifact(name="gone"),
    }
    new = {
        "kept": synthetic_artifact(name="kept"),
        "added": synthetic_artifact(name="added"),
    }
    report = compare_artifacts(old, new)
    by_name = {d.name: d for d in report.deltas}
    assert by_name["gone"].status == "missing"
    assert by_name["gone"].failed
    assert by_name["added"].status == "new"
    assert not by_name["added"].failed
    assert report.exit_code == 1


def test_compare_tier_mismatch_is_incomparable():
    old = {"synth": synthetic_artifact(tier="full")}
    new = {"synth": synthetic_artifact(tier="quick")}
    report = compare_artifacts(old, new)
    assert report.deltas[0].status == "incomparable"
    assert report.exit_code == 1


def test_compare_absolute_floor_beats_relative_threshold():
    old = {"synth": synthetic_artifact(value=2.0, direction="higher", floor=1.5)}
    new = {"synth": synthetic_artifact(value=1.0, direction="higher", floor=1.5)}
    report = compare_artifacts(old, new)
    (delta,) = report.deltas
    assert delta.status == "regression"
    assert any("floor" in note for note in delta.notes)


def test_bootstrap_ci_brackets_a_real_shift():
    old = [1.0, 1.02, 0.98, 1.01, 0.99]
    new = [2.0, 2.04, 1.96, 2.02, 1.98]
    ci = bootstrap_ci(old, new)
    assert ci is not None
    lo, hi = ci
    assert lo <= 1.0 <= hi or (lo > 0.8 and hi < 1.2)
    assert bootstrap_ci([1.0], [2.0]) is None


# ---------------------------------------------------------------------------
# CLI


def test_cli_compare_exit_codes(tmp_path):
    old_dir = tmp_path / "old"
    new_dir = tmp_path / "new"
    old_dir.mkdir()
    new_dir.mkdir()
    write_artifact(synthetic_artifact(wall=1.0), old_dir)
    write_artifact(synthetic_artifact(wall=2.0), new_dir)

    assert bench_main(["compare", str(old_dir), str(old_dir)]) == 0
    assert bench_main(["compare", str(old_dir), str(new_dir)]) == 1
    assert (
        bench_main(["compare", str(old_dir), str(new_dir), "--no-wall"]) == 0
    )
    assert (
        bench_main(
            ["compare", str(old_dir), str(new_dir), "--report-only"]
        )
        == 0
    )
    assert bench_main(["compare", str(tmp_path / "nope"), str(new_dir)]) == 2


def test_cli_run_quick_filter_and_baseline(tmp_path):
    out = tmp_path / "results"
    code = bench_main(
        ["--quick", "--filter", "table*", "--out", str(out)]
    )
    assert code == 0
    produced = sorted(p.name for p in out.glob("BENCH_*.json"))
    assert produced == [
        "BENCH_table1_vc_config.json",
        "BENCH_table2_matching.json",
    ]
    for path in out.glob("BENCH_*.json"):
        validate_artifact(json.loads(path.read_text()))

    # Self-comparison against the artifacts just produced: clean pass,
    # and the baseline's other 19 benchmarks are not reported missing
    # because --filter restricts the comparison to what actually ran.
    code = bench_main(
        [
            "--quick",
            "--filter",
            "table*",
            "--out",
            str(tmp_path / "again"),
            "--baseline",
            str(out),
            "--no-wall",
        ]
    )
    assert code == 0


def test_cli_run_rejects_unmatched_filter(tmp_path):
    code = bench_main(
        ["--quick", "--filter", "zzz*", "--out", str(tmp_path / "x")]
    )
    assert code == 2


def test_cli_list_runs_without_artifacts(capsys, tmp_path):
    code = bench_main(["--list", "--out", str(tmp_path / "unused")])
    assert code == 0
    captured = capsys.readouterr().out
    for name in EXPECTED_BENCHMARKS:
        assert name in captured
    assert not (tmp_path / "unused").exists()


def test_global_registry_matches_discovery():
    discover()
    names = {spec.name for spec in REGISTRY.select(None)}
    assert EXPECTED_BENCHMARKS <= names
