"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.router == "roco"
        assert args.routing == "xy"
        assert args.rate == 0.2

    def test_router_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--router", "optical"])

    def test_fault_options(self):
        args = build_parser().parse_args(
            ["--faults", "3", "--fault-class", "non-critical"]
        )
        assert args.faults == 3
        assert args.fault_class == "non-critical"


class TestMain:
    def test_clean_run(self, capsys):
        code = main(
            [
                "--size", "4",
                "--packets", "120",
                "--warmup", "20",
                "--rate", "0.1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "roco" in out and "compl=1.000" in out

    def test_faulty_run(self, capsys):
        code = main(
            [
                "--size", "4",
                "--packets", "120",
                "--warmup", "20",
                "--rate", "0.1",
                "--router", "generic",
                "--faults", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fault:" in out

    def test_every_router_runs(self, capsys):
        for router in ("generic", "path_sensitive", "roco"):
            assert (
                main(
                    [
                        "--router", router,
                        "--size", "4",
                        "--packets", "80",
                        "--warmup", "20",
                        "--rate", "0.08",
                    ]
                )
                == 0
            )
