"""Tests for the fault-tolerant execution layer (repro.harness.resilient).

The contract under test (docs/resilient-execution.md):

* failure isolation — a job raising ``DrainTimeoutError`` (or any
  unrecoverable error) is quarantined as a structured ``JobFailure``
  record; the remaining jobs of the sweep/campaign complete normally;
* bounded retry — transient failures are retried up to ``max_retries``
  per job within the sweep-wide ``retry_budget``, with the counters
  surfaced on ``ExecutionStats``;
* resume — an interrupted sweep re-invoked with its journal performs
  zero duplicate simulations (journal + cache hits cover all completed
  jobs, journaled failures are replayed);
* interruption safety — ``KeyboardInterrupt`` mid-sweep leaves the
  cache consistent (no ``.tmp`` litter) and the journal flushed.
"""

import json

import pytest

from repro.core.config import SimulationConfig
from repro.faults.schedule import FaultSchedule
from repro.harness.campaign import campaign_jobs, run_campaigns
from repro.harness.chaos import ChaosConfig, ChaosRule
from repro.harness.parallel import (
    FAILURE_MARKER,
    ParallelExecutor,
    ProgressPrinter,
    ResultCache,
    SimJob,
    is_failure_record,
)
from repro.harness.resilient import (
    CorruptResultError,
    JobFailure,
    RetryPolicy,
    SweepJournal,
    split_failures,
    validate_record,
)
from repro.harness.sweeps import Sweep

BASE = {
    "width": 3,
    "height": 3,
    "warmup_packets": 10,
    "measure_packets": 60,
    "injection_rate": 0.08,
}


def small_config(**overrides) -> SimulationConfig:
    params = dict(BASE)
    params.update(overrides)
    return SimulationConfig(**params)


def small_jobs(seeds=(1, 2, 3)) -> list[SimJob]:
    return [SimJob.of(small_config(seed=seed)) for seed in seeds]


def drain_timeout_config(**overrides) -> SimulationConfig:
    """Deterministically raises DrainTimeoutError (fault-free network,
    traffic sparse enough to trip the tiny no-progress window)."""
    params = {
        "width": 3,
        "height": 3,
        "injection_rate": 0.01,
        "warmup_packets": 0,
        "measure_packets": 20,
        "drain_timeout": 2,
        "seed": 1,
    }
    params.update(overrides)
    return SimulationConfig(**params)


FAST = RetryPolicy(backoff_base=0.0)


class TestFailureIsolation:
    def test_drain_timeout_quarantined_not_raised(self):
        jobs = [
            SimJob.of(small_config(seed=1)),
            SimJob.of(drain_timeout_config()),
            SimJob.of(small_config(seed=2)),
        ]
        executor = ParallelExecutor(policy=FAST)
        records = executor.run_jobs(jobs)
        baseline = ParallelExecutor().run_jobs(
            [jobs[0], jobs[2]]
        )
        assert records[0] == baseline[0]
        assert records[2] == baseline[1]
        assert is_failure_record(records[1])
        ok, failed = split_failures(records)
        assert len(ok) == 2 and len(failed) == 1
        failure = failed[0]
        assert failure.kind == "fatal"
        assert failure.error_type == "DrainTimeoutError"
        assert failure.attempts == 1  # fatal errors are never retried
        stats = executor.last_stats
        assert stats.failures == 1
        assert stats.retries == 0
        assert stats.failures_detail[0].error_type == "DrainTimeoutError"

    def test_drain_timeout_does_not_abort_campaign(self):
        """The acceptance case: one poisoned job in a multi-job campaign."""
        schedule = FaultSchedule()
        jobs = campaign_jobs(small_config(seed=1), [schedule])
        jobs.insert(1, SimJob.of(drain_timeout_config(), schedule=schedule))
        jobs.extend(campaign_jobs(small_config(seed=2), [schedule]))
        report = run_campaigns(jobs, policy=FAST)
        assert len(report.records) == 3
        assert len(report.ok_records) == 2
        assert len(report.failures) == 1
        assert report.failures[0].error_type == "DrainTimeoutError"
        assert report.stats.failures == 1
        summary = "\n".join(report.summary_lines())
        assert "DrainTimeoutError" in summary
        assert "2 completed" in summary and "1 failed" in summary

    def test_without_policy_drain_timeout_still_raises(self):
        from repro.core.simulator import DrainTimeoutError

        with pytest.raises(DrainTimeoutError):
            ParallelExecutor().run_jobs([SimJob.of(drain_timeout_config())])


class TestRetries:
    def test_transient_failure_retried_to_identical_record(self):
        jobs = small_jobs()
        baseline = ParallelExecutor().run_jobs(jobs)
        chaos = ChaosConfig(
            rules=(ChaosRule(kind="transient", indices=(1,), attempts=(0,)),)
        )
        executor = ParallelExecutor(policy=FAST, chaos=chaos)
        records = executor.run_jobs(jobs)
        assert records == baseline
        assert executor.last_stats.retries == 1
        assert executor.last_stats.failures == 0

    def test_crash_loop_quarantined_after_max_retries(self):
        chaos = ChaosConfig(
            rules=(ChaosRule(kind="crash", indices=(0,), attempts=None),)
        )
        policy = RetryPolicy(backoff_base=0.0, max_retries=2)
        executor = ParallelExecutor(policy=policy, chaos=chaos)
        (record,) = executor.run_jobs(small_jobs(seeds=(1,)))
        assert is_failure_record(record)
        assert record["kind"] == "retries-exhausted"
        assert record["attempts"] == 3  # initial + 2 retries
        assert executor.last_stats.worker_crashes == 3
        assert executor.last_stats.retries == 2

    def test_retry_budget_bounds_sweep_wide_retries(self):
        chaos = ChaosConfig(
            rules=(ChaosRule(kind="transient", indices=None, attempts=None),)
        )
        policy = RetryPolicy(backoff_base=0.0, max_retries=5, retry_budget=3)
        executor = ParallelExecutor(policy=policy, chaos=chaos)
        records = executor.run_jobs(small_jobs())
        assert all(is_failure_record(r) for r in records)
        assert executor.last_stats.retries == 3
        kinds = {r["kind"] for r in records}
        assert "retry-budget" in kinds

    def test_corrupt_result_detected_and_retried(self):
        jobs = small_jobs()
        baseline = ParallelExecutor().run_jobs(jobs)
        chaos = ChaosConfig(
            rules=(ChaosRule(kind="corrupt", indices=(0, 2), attempts=(0,)),)
        )
        executor = ParallelExecutor(policy=FAST, chaos=chaos)
        records = executor.run_jobs(jobs)
        assert records == baseline
        assert executor.last_stats.corrupt_results == 2

    def test_backoff_schedule_is_exponential(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)
        assert RetryPolicy(backoff_base=0.0).backoff(5) == 0.0


class TestValidation:
    def test_valid_record_passes(self):
        (record,) = ParallelExecutor().run_jobs(small_jobs(seeds=(1,)))
        validate_record(record)  # does not raise

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda r: r.pop("router"),
            lambda r: r.pop("cycles"),
            lambda r: r.__setitem__("average_latency", -1.0),
            lambda r: r.__setitem__("throughput", float("nan")),
            lambda r: r.__setitem__("average_latency", "fast"),
            lambda r: r.__setitem__("cycles", 0),
        ],
    )
    def test_tampered_record_rejected(self, mutate):
        (record,) = ParallelExecutor().run_jobs(small_jobs(seeds=(1,)))
        tampered = dict(record)
        mutate(tampered)
        with pytest.raises(CorruptResultError):
            validate_record(tampered)

    def test_non_dict_rejected(self):
        with pytest.raises(CorruptResultError):
            validate_record([1, 2, 3])


class TestSweepJournal:
    def test_roundtrip_ok_and_failure(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = SweepJournal(path)
        journal.record_ok("aaa")
        journal.record_failure(
            "bbb",
            JobFailure(
                index=1,
                kind="fatal",
                error_type="DrainTimeoutError",
                message="no progress",
                attempts=1,
            ),
        )
        journal.close()
        resumed = SweepJournal(path, resume=True)
        assert resumed.completed_keys == {"aaa"}
        assert resumed.failed_keys == {"bbb"}
        failure = resumed.failure_for("bbb", index=7)
        assert failure.index == 7  # replayed at the current run's slot
        assert failure.error_type == "DrainTimeoutError"
        assert failure.key == "bbb"

    def test_ok_supersedes_earlier_failure(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = SweepJournal(path)
        journal.record_failure(
            "k",
            JobFailure(
                index=0, kind="retries-exhausted", error_type="X",
                message="m", attempts=3,
            ),
        )
        journal.record_ok("k")
        journal.close()
        resumed = SweepJournal(path, resume=True)
        assert resumed.completed_keys == {"k"}
        assert resumed.failed_keys == set()

    def test_truncated_tail_tolerated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = SweepJournal(path)
        journal.record_ok("aaa")
        journal.close()
        with path.open("a") as handle:
            handle.write('{"event": "ok", "key": "bb')  # killed mid-write
        resumed = SweepJournal(path, resume=True)
        assert resumed.completed_keys == {"aaa"}

    def test_fresh_open_truncates(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = SweepJournal(path)
        journal.record_ok("aaa")
        journal.close()
        fresh = SweepJournal(path, resume=False)
        fresh.close()
        assert SweepJournal(path, resume=True).completed_keys == set()


class TestResume:
    def test_interrupted_sweep_resumes_with_zero_duplicates(self, tmp_path):
        """The acceptance case: interrupt mid-run, resume, count sims."""
        sweep = Sweep(
            axes={"injection_rate": [0.05, 0.08], "seed": [1, 2]}, base=BASE
        )
        cache = ResultCache(tmp_path / "cache")
        journal = SweepJournal(tmp_path / "journal.jsonl")
        interrupted = ParallelExecutor(
            cache=cache, journal=journal, policy=FAST
        )

        bomb = {"after": 2}

        def interrupting_progress(done, total, record):
            if done >= bomb["after"]:
                raise KeyboardInterrupt

        interrupted.progress = interrupting_progress
        with pytest.raises(KeyboardInterrupt):
            sweep.run(executor=interrupted)
        journal.close()
        assert interrupted.simulations_run == 2
        assert len(journal.completed_keys) == 2

        resumed_journal = SweepJournal(tmp_path / "journal.jsonl", resume=True)
        resumed = ParallelExecutor(
            cache=ResultCache(tmp_path / "cache"),
            journal=resumed_journal,
            policy=FAST,
        )
        records = sweep.run(executor=resumed)
        # Zero duplicate simulations: only the two jobs the interrupt
        # cancelled are simulated, the completed ones come from the
        # journal + cache.
        assert resumed.simulations_run == 2
        assert resumed.last_stats.resumed == 2
        assert resumed.last_stats.cache_hits == 2
        assert records == Sweep(axes=sweep.axes, base=BASE).run()

    def test_journaled_failure_replayed_without_rerun(self, tmp_path):
        jobs = [
            SimJob.of(small_config(seed=1)),
            SimJob.of(drain_timeout_config()),
        ]
        journal = SweepJournal(tmp_path / "journal.jsonl")
        cache = ResultCache(tmp_path / "cache")
        first = ParallelExecutor(cache=cache, journal=journal, policy=FAST)
        first_records = first.run_jobs(jobs)
        journal.close()
        assert first.simulations_run == 1  # failed job produced no record

        resumed_journal = SweepJournal(tmp_path / "journal.jsonl", resume=True)
        resumed = ParallelExecutor(
            cache=ResultCache(tmp_path / "cache"),
            journal=resumed_journal,
            policy=FAST,
        )
        records = resumed.run_jobs(jobs)
        assert resumed.simulations_run == 0  # poison job NOT re-run
        assert resumed.last_stats.resumed == 2
        assert is_failure_record(records[1])
        assert records[0] == first_records[0]
        assert records[1]["error_type"] == first_records[1]["error_type"]

    def test_retry_failed_on_resume_reruns_quarantined_jobs(self, tmp_path):
        jobs = [SimJob.of(drain_timeout_config())]
        journal = SweepJournal(tmp_path / "journal.jsonl")
        first = ParallelExecutor(journal=journal, policy=FAST)
        first.run_jobs(jobs)
        journal.close()

        policy = RetryPolicy(backoff_base=0.0, retry_failed_on_resume=True)
        resumed = ParallelExecutor(
            journal=SweepJournal(tmp_path / "journal.jsonl", resume=True),
            policy=policy,
        )
        records = resumed.run_jobs(jobs)
        assert resumed.simulations_run == 0  # it failed again, no record
        assert is_failure_record(records[0])
        assert resumed.last_stats.resumed == 0  # genuinely re-attempted


class TestInterruptConsistency:
    def test_keyboard_interrupt_leaves_cache_consistent(self, tmp_path):
        """Satellite: no ``.tmp`` litter, journal flushed, stats set."""
        cache_dir = tmp_path / "cache"
        cache = ResultCache(cache_dir)
        journal = SweepJournal(tmp_path / "journal.jsonl")
        executor = ParallelExecutor(cache=cache, journal=journal, policy=FAST)

        def interrupt_late(done, total, record):
            if done >= 2:
                raise KeyboardInterrupt

        executor.progress = interrupt_late
        with pytest.raises(KeyboardInterrupt):
            executor.run_jobs(small_jobs())
        assert list(cache_dir.glob("*.tmp")) == []
        assert len(list(cache_dir.glob("*.json"))) == 2
        # The journal was flushed before the exception escaped: re-read
        # it from disk, bypassing the in-memory state.
        lines = [
            json.loads(line)
            for line in (tmp_path / "journal.jsonl").read_text().splitlines()
        ]
        assert len(lines) == 2
        assert all(entry["event"] == "ok" for entry in lines)
        assert executor.last_stats.simulated == 2


class TestProgressReporting:
    def test_progress_printer_reports_retries_and_failures(self, capsys):
        import sys

        chaos = ChaosConfig(
            rules=(
                ChaosRule(kind="transient", indices=(0,), attempts=(0,)),
                ChaosRule(kind="crash", indices=(2,), attempts=None),
            )
        )
        policy = RetryPolicy(backoff_base=0.0, max_retries=1)
        printer = ProgressPrinter(stream=sys.stderr)
        executor = ParallelExecutor(
            policy=policy, chaos=chaos, progress=printer
        )
        executor.run_jobs(small_jobs())
        err = capsys.readouterr().err
        assert "retry job 0" in err
        assert "failed 1" in err
        assert "finished: 2 ok, 1 failed, 2 retried" in err
        assert printer.retries == 2 and printer.failed == 1

    def test_failure_records_reach_progress_callback(self):
        seen = []
        chaos = ChaosConfig(
            rules=(ChaosRule(kind="crash", indices=(0,), attempts=None),)
        )
        executor = ParallelExecutor(
            policy=RetryPolicy(backoff_base=0.0, max_retries=0),
            chaos=chaos,
            progress=lambda done, total, record: seen.append(
                record.get(FAILURE_MARKER, False)
            ),
        )
        executor.run_jobs(small_jobs(seeds=(1, 2)))
        assert sorted(seen) == [False, True]


class TestPooledSupervision:
    """Real process-pool paths: crash recovery and deadline kills."""

    def test_pooled_worker_crash_recovered(self):
        jobs = small_jobs()
        baseline = ParallelExecutor().run_jobs(jobs)
        chaos = ChaosConfig(
            rules=(ChaosRule(kind="crash", indices=(1,), attempts=(0,)),)
        )
        policy = RetryPolicy(backoff_base=0.0, max_retries=2)
        executor = ParallelExecutor(workers=2, policy=policy, chaos=chaos)
        records = executor.run_jobs(jobs)
        assert records == baseline
        assert executor.last_stats.worker_crashes == 1
        assert executor.last_stats.retries == 1
        assert executor.last_stats.failures == 0

    def test_pooled_hang_killed_by_deadline(self):
        jobs = small_jobs()
        baseline = ParallelExecutor().run_jobs(jobs)
        chaos = ChaosConfig(
            rules=(
                ChaosRule(
                    kind="hang", indices=(0,), attempts=(0,), seconds=30.0
                ),
            )
        )
        policy = RetryPolicy(
            job_timeout=1.5, backoff_base=0.0, max_retries=2
        )
        executor = ParallelExecutor(workers=2, policy=policy, chaos=chaos)
        records = executor.run_jobs(jobs)
        assert records == baseline
        assert executor.last_stats.timeouts == 1
        assert executor.last_stats.failures == 0

    def test_pooled_without_policy_unchanged(self):
        jobs = small_jobs()
        assert ParallelExecutor(workers=2).run_jobs(
            jobs
        ) == ParallelExecutor().run_jobs(jobs)
