"""Unit tests for the per-node traffic source (injection machinery)."""

from repro.core.config import SimulationConfig
from repro.core.network import Network
from repro.core.simulator import Source
from repro.core.types import NodeId, Packet


def setup(router="roco"):
    net = Network(
        SimulationConfig(
            width=4, height=4, router=router, warmup_packets=0, measure_packets=10
        )
    )
    net.wire()
    net.stats.start_measurement(0)
    node = NodeId(1, 1)
    return net, Source(node, net.router_at(node))


def queue_packet(net, source, dest=NodeId(3, 1), pid=0, size=4):
    packet = Packet(
        pid=pid, src=source.node, dest=dest, size=size, created_cycle=0
    )
    packet.measured = True
    net.stats.packet_created(packet)
    source.queue.append(packet)
    return packet


class TestInjectionMechanics:
    def test_one_flit_per_cycle(self):
        net, source = setup()
        packet = queue_packet(net, source)
        for cycle in range(3):
            source.inject(net, cycle)
        assert source.vc is not None
        assert source.vc.occupancy == 3
        assert len(source.current) == 1

    def test_claims_and_releases_vc(self):
        net, source = setup()
        packet = queue_packet(net, source, size=2)
        source.inject(net, 0)
        vc = source.vc
        assert vc.owner_pid == packet.pid
        source.inject(net, 1)
        # Tail pushed: VC released, source idle.
        assert vc.owner_pid is None
        assert source.current is None

    def test_head_commits_route(self):
        net, source = setup()
        queue_packet(net, source, dest=NodeId(3, 1))
        source.inject(net, 0)
        head = source.vc.front
        assert head.is_head
        assert head.route is not None  # RoCo commits at injection

    def test_backlog_counts_queue_and_inflight(self):
        net, source = setup()
        queue_packet(net, source, pid=0)
        queue_packet(net, source, pid=1, dest=NodeId(1, 3))
        assert source.backlog == 8
        source.inject(net, 0)
        assert source.backlog == 8 - 1

    def test_impossible_packet_dropped_immediately(self):
        net, source = setup()
        net.has_faults = True
        source.router.row.dead = True
        packet = queue_packet(net, source, dest=NodeId(3, 1))  # needs X first
        source.inject(net, 0)
        assert packet.dropped_cycle is not None
        assert not source.queue

    def test_dropped_mid_injection_releases_vc(self):
        net, source = setup()
        packet = queue_packet(net, source)
        source.inject(net, 0)
        vc = source.vc
        packet.dropped_cycle = 1
        source.inject(net, 2)
        assert source.current is None
        assert vc.owner_pid is None

    def test_waits_when_no_vc_available(self):
        net, source = setup()
        first = queue_packet(net, source, pid=0, dest=NodeId(3, 1))
        # Claim every injxy VC so nothing is available.
        for vc in source.router.all_vcs():
            if vc.vc_class == "injxy" and vc.owner_pid is None:
                vc.claim(99)
        source.inject(net, 0)
        assert source.current is None
        assert source.queue  # still waiting, not dropped
