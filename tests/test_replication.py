"""Tests for the replication statistics and saturation search."""

import pytest

from repro.harness.replication import (
    MetricSummary,
    find_saturation_rate,
    replicate,
)

from .conftest import small_config


class TestMetricSummary:
    def test_mean_and_std(self):
        s = MetricSummary("x", (10.0, 12.0, 14.0))
        assert s.mean == 12.0
        assert s.std == pytest.approx(2.0)

    def test_single_sample_no_spread(self):
        s = MetricSummary("x", (5.0,))
        assert s.std == 0.0 and s.ci95 == 0.0

    def test_ci_uses_t_distribution(self):
        s = MetricSummary("x", (10.0, 12.0))
        # n=2 -> dof=1 -> t=12.706; std=sqrt(2); ci = t*std/sqrt(2)
        assert s.ci95 == pytest.approx(12.706 * s.std / 2**0.5)

    def test_str(self):
        assert "n=3" in str(MetricSummary("lat", (1.0, 2.0, 3.0)))


class TestReplicate:
    def test_summaries_for_all_metrics(self):
        summaries = replicate(
            small_config(measure_packets=80), seeds=(1, 2, 3)
        )
        assert set(summaries) == {
            "average_latency",
            "throughput",
            "completion_probability",
            "energy_per_packet_nj",
            "pef",
        }
        lat = summaries["average_latency"]
        assert len(lat.samples) == 3
        assert lat.mean > 0
        assert lat.ci95 >= 0

    def test_completion_is_deterministically_one(self):
        summaries = replicate(
            small_config(measure_packets=80), seeds=(1, 2)
        )
        assert summaries["completion_probability"].mean == 1.0
        assert summaries["completion_probability"].std == 0.0

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            replicate(small_config(), seeds=())


class TestSaturationSearch:
    def test_finds_a_plausible_rate_on_small_mesh(self):
        rate = find_saturation_rate(
            "roco",
            width=4,
            height=4,
            measure_packets=250,
            tolerance=0.05,
        )
        # A 4x4 mesh has a bisection bound of 1.0 flits/node/cycle;
        # practical saturation sits well inside (0.2, 0.6].
        assert 0.2 < rate <= 0.6

    def test_threshold_factor_moves_the_estimate(self):
        loose = find_saturation_rate(
            "roco", width=4, height=4, measure_packets=200,
            tolerance=0.06, threshold_factor=5.0,
        )
        tight = find_saturation_rate(
            "roco", width=4, height=4, measure_packets=200,
            tolerance=0.06, threshold_factor=1.5,
        )
        assert tight <= loose
