"""Tiny-scale tests for the per-figure reproduction runners.

The benchmarks exercise these at 8x8; here we only verify the runners'
shapes, keys and basic sanity on a 3x3 grid so `pytest tests/` stays
fast.
"""

import pytest

import repro.harness.figures as figures
from repro.harness import ExperimentScale, latency_figure

MICRO = ExperimentScale(
    name="micro",
    width=3,
    height=3,
    warmup_packets=15,
    measure_packets=80,
    seeds=(1,),
    rates=(0.06,),
    contention_rates=(0.10,),
    max_cycles=20_000,
)


class TestLatencyRunners:
    def test_figure8_shape(self):
        data = figures.figure8(MICRO)
        assert set(data) == {"xy", "xy-yx", "adaptive"}
        for routing, per_router in data.items():
            assert set(per_router) == {"generic", "path_sensitive", "roco"}
            for router, curve in per_router.items():
                assert [rate for rate, _ in curve] == list(MICRO.rates)
                assert all(latency > 0 for _, latency in curve)

    def test_latency_figure_other_traffic(self):
        data = latency_figure("neighbor", MICRO)
        for per_router in data.values():
            for curve in per_router.values():
                # neighbour traffic: single-hop latencies, well under 20.
                assert all(latency < 20 for _, latency in curve)


class TestContentionRunner:
    def test_figure3_shape(self):
        data = figures.figure3(MICRO)
        assert set(data) == {"row_xy", "column_xy", "adaptive"}
        for panel in data.values():
            for router, curve in panel.items():
                for rate, probability in curve:
                    assert 0.0 <= probability <= 1.0


class TestFaultRunners:
    def test_fault_figure_shape(self, monkeypatch):
        monkeypatch.setattr(figures, "FAULT_COUNTS", (1,))
        data = figures.fault_figure(critical=True, scale=MICRO)
        for routing, per_router in data.items():
            for router, per_count in per_router.items():
                assert set(per_count) == {1}
                assert 0.0 <= per_count[1] <= 1.0

    def test_figure13_shape(self):
        data = figures.figure13(MICRO)
        assert set(data) == {"uniform", "self_similar", "transpose"}
        for per_router in data.values():
            for energy in per_router.values():
                assert energy > 0

    def test_figure14_shape(self, monkeypatch):
        monkeypatch.setattr(figures, "FAULT_COUNTS", (1,))
        data = figures.figure14(MICRO)
        assert set(data) == {"critical", "non_critical"}
        for per_router in data.values():
            for per_count in per_router.values():
                cell = per_count[1]
                assert {"pef", "latency", "completion", "energy_nj"} == set(cell)
                assert cell["pef"] > 0
