"""Tests that reported hops count actual link traversals, not distance.

The fix under test: ``average_hops`` used to fall back to the Manhattan
distance between source and destination, silently under-reporting any
detour.  Packets now carry a ``hops`` counter incremented on every link
launch of the head flit, so a detoured worm reports the links it really
crossed.
"""

import pytest

from repro.core.simulator import Simulator
from repro.core.statistics import StatsCollector
from repro.core.types import Direction, NodeId, Packet
from repro.faults.injector import ComponentFault
from repro.faults.model import Component
from repro.routing.xyyx import XYYXRouting
from repro.traffic.base import TrafficPattern

from .conftest import small_config

SRC = NodeId(0, 0)
DEST = NodeId(2, 2)

#: A staircase (0,0) -> (3,0) -> (3,2) -> (2,2): 6 link traversals where
#: the minimal route needs only 4.  Every leg is class-legal on the RoCo
#: XY-YX Table-1 path sets (dx -> txy -> dy -> tyx -> eject).
DETOUR = {
    NodeId(0, 0): Direction.EAST,
    NodeId(1, 0): Direction.EAST,
    NodeId(2, 0): Direction.EAST,
    NodeId(3, 0): Direction.SOUTH,
    NodeId(3, 1): Direction.SOUTH,
    NodeId(3, 2): Direction.WEST,
}


class DetourRouting(XYYXRouting):
    """Forces the staircase for (0,0)->(2,2); defers otherwise."""

    def candidates(self, node: NodeId, packet: Packet):
        if packet.dest == DEST and node in DETOUR:
            return (DETOUR[node],)
        return super().candidates(node, packet)


class SingleFlow(TrafficPattern):
    """Every packet goes (0,0) -> (2,2); only (0,0) generates."""

    name = "single-flow"

    def destination(self, src: NodeId) -> NodeId:
        return DEST

    def arrivals(self, node: NodeId, cycle: int) -> int:
        if node != SRC:
            return 0
        return super().arrivals(node, cycle)


def _detour_sim() -> Simulator:
    config = small_config(
        routing="xy-yx",
        injection_rate=0.05,
        warmup_packets=0,
        measure_packets=40,
    )
    # One static critical fault away from the staircase, so this is a
    # faulted XY-YX run (the regime the old Manhattan fallback lied in).
    fault = ComponentFault(node=NodeId(1, 3), component=Component.CROSSBAR)
    sim = Simulator(config, traffic=SingleFlow(), faults=[fault])
    routing = DetourRouting()
    routing.topology = sim.network.topology
    sim.network.routing = routing
    for router in sim.network.routers.values():
        router.routing = routing
    return sim


class TestDetouredRun:
    def test_average_hops_reports_real_traversals(self):
        result = _detour_sim().run()
        assert result.delivered_packets == 40
        manhattan = abs(SRC.x - DEST.x) + abs(SRC.y - DEST.y)
        assert result.average_hops == 6.0
        assert result.average_hops > manhattan

    def test_packet_hop_counter_matches_route_length(self):
        sim = _detour_sim()
        delivered = []
        sim.delivery_listeners.append(delivered.append)
        sim.run()
        assert delivered
        assert all(p.hops == len(DETOUR) for p in delivered)


class TestStatsFallback:
    def test_fallback_uses_counted_hops(self):
        stats = StatsCollector()
        stats.start_measurement(0)
        packet = Packet(
            pid=0, src=SRC, dest=DEST, size=4, created_cycle=0
        )
        packet.hops = 6  # more than the Manhattan distance of 4
        stats.packet_created(packet)
        packet.delivered_cycle = 20
        stats.packet_delivered(packet, True)
        assert stats.average_hops == 6.0

    def test_explicit_hops_argument_still_wins(self):
        stats = StatsCollector()
        stats.start_measurement(0)
        packet = Packet(
            pid=0, src=SRC, dest=DEST, size=4, created_cycle=0
        )
        packet.hops = 3
        stats.packet_created(packet)
        packet.delivered_cycle = 20
        stats.packet_delivered(packet, True, hops=9)
        assert stats.average_hops == 9.0
