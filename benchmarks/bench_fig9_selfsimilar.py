"""Reproduces Figure 9 — latency vs injection rate, self-similar traffic."""

from conftest import BENCH, EXECUTOR, once

from repro.harness import figure9, report


def test_figure9_selfsimilar_latency(benchmark):
    data = once(benchmark, lambda: figure9(BENCH, executor=EXECUTOR))
    print()
    print(report.render_latency_figure(data, "Figure 9", "self-similar"))

    def lat(routing, router, rate):
        return dict(data[routing][router])[rate]

    # RoCo below generic at every sub-saturation point, every routing
    # algorithm; at the top (near-saturation) rate the heavy-tailed
    # bursts make single-seed latencies noisy, so allow a tolerance.
    for routing in ("xy", "xy-yx", "adaptive"):
        for rate in BENCH.rates[:-1]:
            assert lat(routing, "roco", rate) < lat(routing, "generic", rate)
        high = BENCH.rates[-1]
        assert lat(routing, "roco", high) < 1.20 * lat(routing, "generic", high)

    # Bursty arrivals cost latency versus smooth Bernoulli arrivals of
    # the same mean rate (compare the Figure 8 numbers qualitatively).
    low = BENCH.rates[0]
    assert lat("xy", "generic", low) > 24  # uniform Fig 8 sits near 27

