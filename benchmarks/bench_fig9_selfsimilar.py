"""Reproduces Figure 9 — latency vs injection rate, self-similar traffic."""

from conftest import BENCH, EXECUTOR, curve_value, once

from repro.harness import figure9, report
from repro.harness.benchbed import Outcome, benchmark


@benchmark(
    "fig9_selfsimilar",
    headline="roco_latency_gap_low_load_xy",
    unit="fraction",
    direction="higher",
)
def bench(ctx):
    """RoCo's low-load advantage under bursty self-similar arrivals."""
    scale = ctx.scale(BENCH)
    data = figure9(scale, executor=ctx.executor)
    low = scale.rates[0]
    gap = 1 - curve_value(data, "xy", "roco", low) / curve_value(
        data, "xy", "generic", low
    )
    return Outcome(gap, details={"curves": data})


def test_figure9_selfsimilar_latency(benchmark):
    data = once(benchmark, lambda: figure9(BENCH, executor=EXECUTOR))
    print()
    print(report.render_latency_figure(data, "Figure 9", "self-similar"))

    def lat(routing, router, rate):
        return curve_value(data, routing, router, rate)

    # RoCo below generic at every sub-saturation point, every routing
    # algorithm; at the top (near-saturation) rate the heavy-tailed
    # bursts make single-seed latencies noisy, so allow a tolerance.
    for routing in ("xy", "xy-yx", "adaptive"):
        for rate in BENCH.rates[:-1]:
            assert lat(routing, "roco", rate) < lat(routing, "generic", rate)
        high = BENCH.rates[-1]
        assert lat(routing, "roco", high) < 1.20 * lat(routing, "generic", high)

    # Bursty arrivals cost latency versus smooth Bernoulli arrivals of
    # the same mean rate (compare the Figure 8 numbers qualitatively).
    low = BENCH.rates[0]
    assert lat("xy", "generic", low) > 24  # uniform Fig 8 sits near 27
