"""Activity-driven scheduling core: speedup over the full-sweep baseline.

Times matched pairs of runs — active-set scheduler vs ``full_sweep=True``
— on the paper's 8x8 RoCo mesh under uniform traffic at three operating
points, asserting that (a) both schedulers produce bit-identical result
records and (b) the active scheduler is at least 1.5x faster at the low
operating point (0.1 flits/node/cycle), where most routers are dormant
most cycles.

Methodology notes: the headline ratio uses CPU time (``process_time``)
and the min over repeated interleaved pairs — external load only ever
*adds* time, so the minimum is the most reproducible estimator of the
true cost (the same reasoning behind ``timeit``'s ``min``).  At higher
loads the duty cycle approaches 1 and the two schedulers converge, so
those points only assert equivalence and report the measured ratio.
"""

from __future__ import annotations

import time

from conftest import once

from repro.core.config import SimulationConfig
from repro.core.simulator import run_simulation
from repro.harness.export import result_record

#: Operating points in flits/node/cycle (``injection_rate``'s unit).
RATES = (0.1, 0.3, 0.5)

#: Repeated pairs at the headline rate; min-of-N absorbs machine noise.
REPEATS = 9

#: Required speedup at the 0.1 flits/node/cycle operating point.
SPEEDUP_FLOOR = 1.5


def scheduling_config(rate: float) -> SimulationConfig:
    return SimulationConfig(
        width=8,
        height=8,
        router="roco",
        routing="xy",
        traffic="uniform",
        injection_rate=rate,
        seed=7,
        warmup_packets=150,
        measure_packets=900,
        max_cycles=40_000,
    )


def timed_pair(rate: float):
    """One interleaved active/full-sweep pair: (records?, times)."""
    config = scheduling_config(rate)
    t0 = time.process_time()
    active = run_simulation(config)
    t1 = time.process_time()
    sweep = run_simulation(scheduling_config(rate), full_sweep=True)
    t2 = time.process_time()
    return active, sweep, t1 - t0, t2 - t1


def measure():
    rows = []
    for rate in RATES:
        repeats = REPEATS if rate == RATES[0] else 2
        active_times, sweep_times = [], []
        duty = None
        for _ in range(repeats):
            active, sweep, ta, ts = timed_pair(rate)
            assert result_record(active) == result_record(sweep), (
                f"schedulers diverged at rate {rate}"
            )
            active_times.append(ta)
            sweep_times.append(ts)
            duty = active.scheduler.duty_cycle
        rows.append(
            {
                "rate": rate,
                "active_s": min(active_times),
                "sweep_s": min(sweep_times),
                "speedup": min(sweep_times) / min(active_times),
                "duty": duty,
            }
        )
    return rows


def test_activity_core_speedup(benchmark):
    rows = once(benchmark, measure)
    print()
    print(f"{'rate':>6} {'active':>9} {'sweep':>9} {'speedup':>8} {'duty':>6}")
    for row in rows:
        print(
            f"{row['rate']:>6.2f} {row['active_s']:>8.3f}s {row['sweep_s']:>8.3f}s "
            f"{row['speedup']:>7.2f}x {row['duty']:>6.3f}"
        )

    low = rows[0]
    assert low["rate"] == 0.1
    # Headline criterion: >= 1.5x single-run speedup at 0.1 flits/node/
    # cycle uniform traffic on the 8x8 mesh.
    assert low["speedup"] >= SPEEDUP_FLOOR, (
        f"activity scheduler only {low['speedup']:.2f}x faster at rate 0.1"
    )
    # The saving must come from skipped router-cycles, not anything else:
    # the duty cycle bounds the achievable speedup from below.
    assert low["duty"] < 0.7

    # Higher loads: equivalence held (asserted in measure()); the duty
    # cycle rises towards 1 and the advantage legitimately shrinks.
    for row in rows[1:]:
        assert row["duty"] > low["duty"]
