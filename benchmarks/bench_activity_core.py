"""Activity-driven scheduling core: speedup over the full-sweep baseline.

Times matched pairs of runs — active-set scheduler vs ``full_sweep=True``
— on the paper's 8x8 RoCo mesh under uniform traffic at three operating
points, asserting that (a) both schedulers produce bit-identical result
records and (b) the active scheduler is at least 1.5x faster at the low
operating point (0.1 flits/node/cycle), where most routers are dormant
most cycles.

Methodology notes: the headline ratio uses CPU time (``process_time``)
and the min over repeated interleaved pairs — external load only ever
*adds* time, so the minimum is the most reproducible estimator of the
true cost (the same reasoning behind ``timeit``'s ``min``).  At higher
loads the duty cycle approaches 1 and the two schedulers converge, so
those points only assert equivalence and report the measured ratio.

The registered benchmark's *headline* is the deterministic low-load duty
cycle (the quantity that bounds the achievable speedup), not the noisy
wall-clock ratio — the measured speedup rides along in the artifact's
details, where the wall-time gate of ``repro bench compare`` covers it.
"""

from __future__ import annotations

import time

from conftest import once

from repro.core.config import SimulationConfig
from repro.core.simulator import run_simulation
from repro.harness.benchbed import Outcome, Threshold, benchmark
from repro.harness.export import result_record

#: Operating points in flits/node/cycle (``injection_rate``'s unit).
RATES = (0.1, 0.3, 0.5)

#: Repeated pairs at the headline rate; min-of-N absorbs machine noise.
REPEATS = 9

#: Required speedup at the 0.1 flits/node/cycle operating point.
SPEEDUP_FLOOR = 1.5


def scheduling_config(
    rate: float, warmup: int = 150, measure: int = 900
) -> SimulationConfig:
    return SimulationConfig(
        width=8,
        height=8,
        router="roco",
        routing="xy",
        traffic="uniform",
        injection_rate=rate,
        seed=7,
        warmup_packets=warmup,
        measure_packets=measure,
        max_cycles=40_000,
    )


def timed_pair(rate: float, warmup: int = 150, measure_pkts: int = 900):
    """One interleaved active/full-sweep pair: (records?, times)."""
    config = scheduling_config(rate, warmup, measure_pkts)
    t0 = time.process_time()
    active = run_simulation(config)
    t1 = time.process_time()
    sweep = run_simulation(
        scheduling_config(rate, warmup, measure_pkts), full_sweep=True
    )
    t2 = time.process_time()
    return active, sweep, t1 - t0, t2 - t1


def measure(
    rates=RATES,
    repeats: int = REPEATS,
    warmup: int = 150,
    measure_pkts: int = 900,
    absorb=None,
):
    rows = []
    for rate in rates:
        pair_count = repeats if rate == rates[0] else 2
        active_times, sweep_times = [], []
        duty = None
        for _ in range(pair_count):
            active, sweep, ta, ts = timed_pair(rate, warmup, measure_pkts)
            assert result_record(active) == result_record(sweep), (
                f"schedulers diverged at rate {rate}"
            )
            if absorb is not None:
                absorb(active)
                absorb(sweep)
            active_times.append(ta)
            sweep_times.append(ts)
            duty = active.scheduler.duty_cycle
        rows.append(
            {
                "rate": rate,
                "active_s": min(active_times),
                "sweep_s": min(sweep_times),
                "speedup": min(sweep_times) / max(min(active_times), 1e-9),
                "duty": duty,
            }
        )
    return rows


def render_rows(rows) -> str:
    lines = [
        f"{'rate':>6} {'active':>9} {'sweep':>9} {'speedup':>8} {'duty':>6}"
    ]
    for row in rows:
        lines.append(
            f"{row['rate']:>6.2f} {row['active_s']:>8.3f}s "
            f"{row['sweep_s']:>8.3f}s {row['speedup']:>7.2f}x "
            f"{row['duty']:>6.3f}"
        )
    return "\n".join(lines)


@benchmark(
    "activity_core",
    headline="duty_cycle_low_load",
    unit="fraction",
    direction="lower",
    ceiling=0.7,
)
def bench(ctx):
    """Low-load duty cycle of the active-set scheduler (bounds speedup)."""
    rates = ctx.pick(quick=(0.1,), full=RATES)
    repeats = ctx.pick(quick=1, full=REPEATS)
    warmup, measure_pkts = ctx.pick(quick=(60, 250), full=(150, 900))
    rows = measure(rates, repeats, warmup, measure_pkts, absorb=ctx.absorb)
    low = rows[0]
    return Outcome(
        low["duty"],
        details={"rows": rows, "speedup_low_load": low["speedup"]},
        ceiling=ctx.pick(quick=0.75, full=None),
    )


def test_activity_core_speedup(benchmark):
    rows = once(benchmark, measure)
    print()
    print(render_rows(rows))

    low = rows[0]
    assert low["rate"] == 0.1
    # Headline criterion: >= 1.5x single-run speedup at 0.1 flits/node/
    # cycle uniform traffic on the 8x8 mesh.  The benchbed threshold
    # carries the measured table into the failure message, so a noisy
    # runner produces a diagnosable report, not a bare AssertionError.
    Threshold("activity_speedup_low_load", floor=SPEEDUP_FLOOR).check(
        low["speedup"], context=render_rows(rows)
    )
    # The saving must come from skipped router-cycles, not anything else:
    # the duty cycle bounds the achievable speedup from below.
    Threshold("duty_cycle_low_load", ceiling=0.7).check(
        low["duty"], context=render_rows(rows)
    )

    # Higher loads: equivalence held (asserted in measure()); the duty
    # cycle rises towards 1 and the advantage legitimately shrinks.
    for row in rows[1:]:
        assert row["duty"] > low["duty"]
