"""Extension: packet-size sensitivity.

The paper fixes packets at four 128-bit flits.  This extension sweeps
worm length and checks the serialization model: unloaded latency grows
by ~1 cycle per extra flit, and long worms hold VCs longer, dragging
saturation in earlier.
"""

from conftest import once

from repro.core.config import SimulationConfig
from repro.core.simulator import run_simulation
from repro.harness import report

SIZES = (1, 2, 4, 8)
LOW_RATE, HIGH_RATE = 0.05, 0.30


def latency(flits: int, rate: float) -> float:
    config = SimulationConfig(
        width=8,
        height=8,
        router="roco",
        routing="xy",
        traffic="uniform",
        injection_rate=rate,
        flits_per_packet=flits,
        warmup_packets=120,
        measure_packets=700,
        seed=7,
        max_cycles=60_000,
    )
    return run_simulation(config).average_latency


def test_extension_packet_size(benchmark):
    def sweep():
        return {
            f"rate {rate}": [(s, latency(s, rate)) for s in SIZES]
            for rate in (LOW_RATE, HIGH_RATE)
        }

    data = once(benchmark, sweep)
    print()
    print(
        report.render_curves(
            data,
            x_label="flits/pkt",
            title="== Extension: packet-size sensitivity (RoCo, latency) ==",
        )
    )

    low = dict(data[f"rate {LOW_RATE}"])
    high = dict(data[f"rate {HIGH_RATE}"])
    # Unloaded: each extra flit adds ~1 serialization cycle.
    assert 2.0 <= low[4] - low[1] <= 6.0
    assert low[8] > low[4] > low[1]
    # Loaded: longer worms hold VCs longer; the penalty grows superlinearly.
    assert (high[8] - high[1]) > (low[8] - low[1])
