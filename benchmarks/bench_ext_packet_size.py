"""Extension: packet-size sensitivity.

The paper fixes packets at four 128-bit flits.  This extension sweeps
worm length and checks the serialization model: unloaded latency grows
by ~1 cycle per extra flit, and long worms hold VCs longer, dragging
saturation in earlier.
"""

from conftest import once

from repro.core.config import SimulationConfig
from repro.core.simulator import run_simulation
from repro.harness import report
from repro.harness.benchbed import Outcome, benchmark

SIZES = (1, 2, 4, 8)
LOW_RATE, HIGH_RATE = 0.05, 0.30


def latency(
    flits: int,
    rate: float,
    sim=run_simulation,
    warmup: int = 120,
    measure: int = 700,
) -> float:
    config = SimulationConfig(
        width=8,
        height=8,
        router="roco",
        routing="xy",
        traffic="uniform",
        injection_rate=rate,
        flits_per_packet=flits,
        warmup_packets=warmup,
        measure_packets=measure,
        seed=7,
        max_cycles=60_000,
    )
    return sim(config).average_latency


@benchmark(
    "ext_packet_size",
    headline="serialization_cycles_1_to_4_flits",
    unit="cycles",
    direction="lower",
)
def bench(ctx):
    """Unloaded latency cost of growing worms from 1 to 4 flits."""
    sizes = ctx.pick(quick=(1, 4), full=SIZES)
    rates = ctx.pick(quick=(LOW_RATE,), full=(LOW_RATE, HIGH_RATE))
    warmup, measure = ctx.pick(quick=(60, 250), full=(120, 700))
    curves = {
        f"rate {rate}": [
            (s, latency(s, rate, ctx.run, warmup, measure)) for s in sizes
        ]
        for rate in rates
    }
    low = dict(curves[f"rate {LOW_RATE}"])
    return Outcome(low[4] - low[1], details={"curves": curves})


def test_extension_packet_size(benchmark):
    def sweep():
        return {
            f"rate {rate}": [(s, latency(s, rate)) for s in SIZES]
            for rate in (LOW_RATE, HIGH_RATE)
        }

    data = once(benchmark, sweep)
    print()
    print(
        report.render_curves(
            data,
            x_label="flits/pkt",
            title="== Extension: packet-size sensitivity (RoCo, latency) ==",
        )
    )

    low = dict(data[f"rate {LOW_RATE}"])
    high = dict(data[f"rate {HIGH_RATE}"])
    # Unloaded: each extra flit adds ~1 serialization cycle.
    assert 2.0 <= low[4] - low[1] <= 6.0
    assert low[8] > low[4] > low[1]
    # Loaded: longer worms hold VCs longer; the penalty grows superlinearly.
    assert (high[8] - high[1]) > (low[8] - low[1])
