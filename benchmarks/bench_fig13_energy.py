"""Reproduces Figure 13 — energy per packet at 30% injection."""

from conftest import BENCH, EXECUTOR, once

from repro.harness import figure13, report
from repro.harness.benchbed import Outcome, benchmark


@benchmark(
    "fig13_energy",
    headline="mean_energy_saving_vs_generic",
    unit="fraction",
    direction="higher",
)
def bench(ctx):
    """RoCo's energy-per-packet saving vs generic, averaged over traffic."""
    scale = ctx.scale(BENCH)
    data = figure13(scale, executor=ctx.executor)
    savings = [
        1 - per_router["roco"] / per_router["generic"]
        for per_router in data.values()
    ]
    return Outcome(
        sum(savings) / len(savings), details={"energy_per_packet_nj": data}
    )


def test_figure13_energy_per_packet(benchmark):
    data = once(benchmark, lambda: figure13(BENCH, executor=EXECUTOR))
    print()
    print(report.render_figure13(data))

    for traffic, per_router in data.items():
        # Ordering: RoCo < Path-Sensitive < generic (Section 5.4).
        assert per_router["roco"] < per_router["path_sensitive"], traffic
        assert per_router["path_sensitive"] < per_router["generic"], traffic

        # Magnitudes: "about 20% lower ... compared to the generic router,
        # and about 6% lower compared to the Path-Sensitive router".
        vs_generic = 1 - per_router["roco"] / per_router["generic"]
        vs_ps = 1 - per_router["roco"] / per_router["path_sensitive"]
        assert 0.10 <= vs_generic <= 0.40, (traffic, vs_generic)
        assert 0.02 <= vs_ps <= 0.20, (traffic, vs_ps)

        # Absolute scale lands in the paper's sub-nJ-per-packet regime.
        for router, energy in per_router.items():
            assert 0.2 <= energy <= 2.0, (traffic, router, energy)
