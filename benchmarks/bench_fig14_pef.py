"""Reproduces Figure 14 — the combined PEF metric under faults."""

from conftest import BENCH_FAULTS, EXECUTOR, once

from repro.harness import figure14, report
from repro.harness.benchbed import Outcome, benchmark


@benchmark(
    "fig14_pef",
    headline="mean_pef_improvement_vs_generic_critical",
    unit="fraction",
    direction="higher",
)
def bench(ctx):
    """RoCo's PEF advantage vs generic under critical faults (paper ~39%)."""
    scale = ctx.scale(BENCH_FAULTS)
    data = figure14(scale, executor=ctx.executor)
    per_router = data["critical"]
    improvements = [
        1 - per_router["roco"][c]["pef"] / per_router["generic"][c]["pef"]
        for c in (1, 2, 4)
    ]
    return Outcome(
        sum(improvements) / len(improvements), details={"pef": data}
    )


def test_figure14_pef(benchmark):
    data = once(benchmark, lambda: figure14(BENCH_FAULTS, executor=EXECUTOR))
    print()
    print(report.render_figure14(data))

    for label in ("critical", "non_critical"):
        per_router = data[label]
        for count in (1, 2, 4):
            roco = per_router["roco"][count]["pef"]
            generic = per_router["generic"][count]["pef"]
            ps = per_router["path_sensitive"][count]["pef"]
            # Headline: RoCo wins the combined metric against both
            # baselines at every fault count (paper: ~50% better than
            # generic, ~35% better than Path-Sensitive).
            assert roco < generic, (label, count)
            assert roco < ps, (label, count)

        # The paper's magnitude claim, averaged over the fault counts
        # (single-seed per-count values are noisy near the drop horizon).
        improvements = [
            1 - per_router["roco"][c]["pef"] / per_router["generic"][c]["pef"]
            for c in (1, 2, 4)
        ]
        assert sum(improvements) / len(improvements) > 0.25, label

    # Non-critical faults barely hurt RoCo (recycling), so its PEF there
    # stays below its own critical-fault PEF.
    for count in (1, 2, 4):
        assert (
            data["non_critical"]["roco"][count]["pef"]
            <= data["critical"]["roco"][count]["pef"] * 1.05
        )
