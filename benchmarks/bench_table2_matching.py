"""Reproduces Table 2 — non-blocking probabilities of the three crossbars."""

import pytest
from conftest import once

from repro.analysis import non_blocking_assignments
from repro.harness import report, table2
from repro.harness.benchbed import Outcome, benchmark


@benchmark(
    "table2_matching",
    headline="roco_non_blocking_probability",
    unit="probability",
    direction="higher",
    floor=0.24,
)
def bench(ctx):
    """RoCo's analytic non-blocking probability (paper: 0.25)."""
    ctx.stamp(analytic=True, n=5)
    data = table2()
    return Outcome(data["roco"], details=dict(data))


def test_table2_non_blocking_probabilities(benchmark):
    data = once(benchmark, table2)
    print()
    print(report.render_table2(data))

    # Paper values: 0.043, 0.125, 0.25.
    assert data["generic"] == pytest.approx(0.043, abs=5e-4)
    assert data["path_sensitive"] == pytest.approx(0.125)
    assert data["roco"] == pytest.approx(0.25)

    # "Almost six times more likely ... and two times more likely."
    assert data["roco"] / data["generic"] == pytest.approx(5.8, abs=0.2)
    assert data["roco"] / data["path_sensitive"] == pytest.approx(2.0)

    # Equation (1) consistency behind the generic number: F(5) = 44.
    assert non_blocking_assignments(5) == 44
