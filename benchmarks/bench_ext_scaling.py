"""Extension: mesh-size scaling of the RoCo advantage.

The paper evaluates one network size (8x8).  This extension sweeps mesh
sizes at a fixed per-node load and checks that RoCo's latency advantage
over the generic router holds as the network grows (its mechanisms are
per-router, so the per-hop saving should compound with diameter).

Sizes from 16x16 up run through the sharded tile engine
(docs/sharded-scaling.md) — bit-identical to single-process execution,
so the curve is one continuous experiment; the artifact additionally
records per-tile activity-scheduler counters for the sharded cells.
"""

from conftest import once

from repro.core.config import SimulationConfig
from repro.core.simulator import run_simulation
from repro.harness import report
from repro.harness.benchbed import Outcome, benchmark

SIZES = (4, 6, 8, 10)
#: Large meshes simulated by the sharded tile engine, and their tilings.
SHARDED_SIZES = (16, 32, 64)
TILINGS = {16: (2, 2), 32: (4, 4), 64: (4, 4)}
RATE = 0.15


def scaling_point(
    router: str,
    k: int,
    sim=run_simulation,
    warmup: int = 120,
    measure: int = 700,
    shards=None,
):
    config = SimulationConfig(
        width=k,
        height=k,
        router=router,
        routing="xy",
        traffic="uniform",
        injection_rate=RATE,
        warmup_packets=warmup,
        measure_packets=measure,
        seed=7,
        max_cycles=40_000,
        shards=shards,
    )
    return sim(config)


def latency(
    router: str,
    k: int,
    sim=run_simulation,
    warmup: int = 120,
    measure: int = 700,
) -> float:
    return scaling_point(router, k, sim, warmup, measure).average_latency


@benchmark(
    "ext_scaling",
    headline="roco_over_generic_latency_8x8",
    unit="x",
    direction="lower",
)
def bench(ctx):
    """RoCo's latency ratio vs generic at the paper's 8x8 size."""
    sizes = ctx.pick(quick=(4, 8), full=SIZES)
    warmup, measure = ctx.pick(quick=(60, 250), full=(120, 700))
    curves = {
        router: [(k, latency(router, k, ctx.run, warmup, measure)) for k in sizes]
        for router in ("generic", "roco")
    }
    ratio = dict(curves["roco"])[8] / dict(curves["generic"])[8]
    # Sharded extension of the curve: each large-mesh point runs across
    # tile worker processes; results are bit-identical to the reference
    # engine, so these extend the same curves.
    sharded_sizes = ctx.pick(quick=(16, 32), full=SHARDED_SIZES)
    sharded_budget = ctx.pick(quick={16: (60, 250), 32: (40, 160)},
                              full={16: (120, 700), 32: (120, 700),
                                    64: (120, 700)})
    sharded_curves: dict[str, list] = {"generic": [], "roco": []}
    tile_scheduler: dict[str, dict] = {}
    for k in sharded_sizes:
        s_warmup, s_measure = sharded_budget[k]
        per_router: dict[str, list] = {}
        for router in ("generic", "roco"):
            result = scaling_point(
                router, k, ctx.run, s_warmup, s_measure, shards=TILINGS[k]
            )
            sharded_curves[router].append((k, result.average_latency))
            per_router[router] = [
                {
                    "router_steps": c.router_steps,
                    "router_slots": c.router_slots,
                    "wakeups": c.wakeups,
                    "sleeps": c.sleeps,
                }
                for c in result.tile_scheduler
            ]
        tile_scheduler[f"{k}x{k}"] = per_router
    return Outcome(
        ratio,
        details={
            "curves": curves,
            "sharded_curves": sharded_curves,
            "tilings": {
                f"{k}x{k}": list(TILINGS[k]) for k in sharded_sizes
            },
            "tile_scheduler": tile_scheduler,
        },
    )


def test_extension_mesh_scaling(benchmark):
    def sweep():
        return {
            router: [(k, latency(router, k)) for k in SIZES]
            for router in ("generic", "roco")
        }

    data = once(benchmark, sweep)
    print()
    print(
        report.render_curves(
            data,
            x_label="mesh k",
            title=f"== Extension: k x k scaling at {RATE} flits/node/cycle ==",
        )
    )

    for k in SIZES:
        generic = dict(data["generic"])[k]
        roco = dict(data["roco"])[k]
        assert roco < generic, k

    # The absolute saving grows with network diameter (per-hop savings
    # compound over longer average paths).
    saving_small = dict(data["generic"])[SIZES[0]] - dict(data["roco"])[SIZES[0]]
    saving_large = dict(data["generic"])[SIZES[-1]] - dict(data["roco"])[SIZES[-1]]
    assert saving_large > saving_small
