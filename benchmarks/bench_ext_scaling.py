"""Extension: mesh-size scaling of the RoCo advantage.

The paper evaluates one network size (8x8).  This extension sweeps mesh
sizes at a fixed per-node load and checks that RoCo's latency advantage
over the generic router holds as the network grows (its mechanisms are
per-router, so the per-hop saving should compound with diameter).
"""

from conftest import once

from repro.core.config import SimulationConfig
from repro.core.simulator import run_simulation
from repro.harness import report
from repro.harness.benchbed import Outcome, benchmark

SIZES = (4, 6, 8, 10)
RATE = 0.15


def latency(
    router: str,
    k: int,
    sim=run_simulation,
    warmup: int = 120,
    measure: int = 700,
) -> float:
    config = SimulationConfig(
        width=k,
        height=k,
        router=router,
        routing="xy",
        traffic="uniform",
        injection_rate=RATE,
        warmup_packets=warmup,
        measure_packets=measure,
        seed=7,
        max_cycles=40_000,
    )
    return sim(config).average_latency


@benchmark(
    "ext_scaling",
    headline="roco_over_generic_latency_8x8",
    unit="x",
    direction="lower",
)
def bench(ctx):
    """RoCo's latency ratio vs generic at the paper's 8x8 size."""
    sizes = ctx.pick(quick=(4, 8), full=SIZES)
    warmup, measure = ctx.pick(quick=(60, 250), full=(120, 700))
    curves = {
        router: [(k, latency(router, k, ctx.run, warmup, measure)) for k in sizes]
        for router in ("generic", "roco")
    }
    ratio = dict(curves["roco"])[8] / dict(curves["generic"])[8]
    return Outcome(ratio, details={"curves": curves})


def test_extension_mesh_scaling(benchmark):
    def sweep():
        return {
            router: [(k, latency(router, k)) for k in SIZES]
            for router in ("generic", "roco")
        }

    data = once(benchmark, sweep)
    print()
    print(
        report.render_curves(
            data,
            x_label="mesh k",
            title=f"== Extension: k x k scaling at {RATE} flits/node/cycle ==",
        )
    )

    for k in SIZES:
        generic = dict(data["generic"])[k]
        roco = dict(data["roco"])[k]
        assert roco < generic, k

    # The absolute saving grows with network diameter (per-hop savings
    # compound over longer average paths).
    saving_small = dict(data["generic"])[SIZES[0]] - dict(data["roco"])[SIZES[0]]
    saving_large = dict(data["generic"])[SIZES[-1]] - dict(data["roco"])[SIZES[-1]]
    assert saving_large > saving_small
