"""Reproduces Figure 11 — completion probability, router-centric faults."""

from conftest import BENCH_FAULTS, EXECUTOR, once

from repro.harness import fault_figure, report
from repro.harness.benchbed import Outcome, benchmark


@benchmark(
    "fig11_critical_faults",
    headline="completion_ratio_roco_over_generic_xy_4faults",
    unit="x",
    direction="higher",
)
def bench(ctx):
    """RoCo's completion advantage at the worst point (XY, 4 faults)."""
    scale = ctx.scale(BENCH_FAULTS)
    data = fault_figure(critical=True, scale=scale, executor=ctx.executor)
    roco = data["xy"]["roco"][4]
    generic = data["xy"]["generic"][4]
    return Outcome(roco / max(generic, 1e-9), details={"completion": data})


def test_figure11_critical_fault_completion(benchmark):
    data = once(
        benchmark,
        lambda: fault_figure(critical=True, scale=BENCH_FAULTS, executor=EXECUTOR),
    )
    print()
    print(report.render_fault_figure(data, "Figure 11 (router-centric faults)"))

    for routing in ("xy", "xy-yx", "adaptive"):
        per_router = data[routing]
        for count in (1, 2, 4):
            # Graceful degradation: RoCo completes at least as much as
            # both baselines for every fault count and routing algorithm.
            assert per_router["roco"][count] >= per_router["generic"][count]
            assert (
                per_router["roco"][count] >= per_router["path_sensitive"][count]
            )

        # Completion degrades (weakly) as faults accumulate.
        for router in per_router:
            assert per_router[router][4] <= per_router[router][1] + 0.02

    # The advantage is largest under deterministic routing (no alternate
    # paths for the baselines) at the highest fault count.
    xy = data["xy"]
    assert xy["roco"][4] > xy["generic"][4]
    improvement = xy["roco"][4] / max(xy["generic"][4], 1e-9) - 1
    assert improvement > 0.05
