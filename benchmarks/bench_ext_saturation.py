"""Extension: saturation throughput per architecture.

Bisection search for the offered load where latency triples over the
unloaded value — the standard operational definition of saturation
throughput.  Printed next to the bisection bound (4/k = 0.5 for an 8x8
mesh) so router efficiency is visible at a glance.
"""

from conftest import once

from repro.analysis.model import bisection_saturation_rate
from repro.harness import report
from repro.harness.benchbed import Outcome, benchmark
from repro.harness.replication import find_saturation_rate

ROUTERS = ("generic", "path_sensitive", "roco")


@benchmark(
    "ext_saturation",
    headline="roco_saturation_fraction_of_bound",
    unit="fraction",
    direction="higher",
)
def bench(ctx):
    """RoCo's saturation throughput as a fraction of the bisection bound."""
    routers = ctx.pick(quick=("roco",), full=ROUTERS)
    measure, tolerance = ctx.pick(quick=(400, 0.06), full=(1500, 0.03))
    rates = {
        router: find_saturation_rate(
            router,
            width=8,
            height=8,
            measure_packets=measure,
            tolerance=tolerance,
            threshold_factor=2.0,
            run=ctx.run,
        )
        for router in routers
    }
    bound = bisection_saturation_rate(8)
    return Outcome(
        rates["roco"] / bound,
        details={"saturation_rates": rates, "bisection_bound": bound},
    )


def test_extension_saturation_throughput(benchmark):
    def sweep():
        # A sustained workload (1500 packets) and a 2x-unloaded threshold
        # give a sharp knee; tiny finite workloads drain before queues
        # build and would blur the estimate upward.
        return {
            router: find_saturation_rate(
                router,
                width=8,
                height=8,
                measure_packets=1500,
                tolerance=0.03,
                threshold_factor=2.0,
            )
            for router in ROUTERS
        }

    data = once(benchmark, sweep)
    bound = bisection_saturation_rate(8)
    rows = [
        [router, f"{rate:.3f}", f"{rate / bound:.0%}"]
        for router, rate in data.items()
    ]
    print()
    print(
        report.render_table(
            ["router", "saturation (flits/node/cyc)", "of bisection bound"],
            rows,
            title="== Extension: 8x8 uniform XY saturation throughput ==",
        )
    )

    for router, rate in data.items():
        # Sanity band: real routers land between half the bisection
        # bound and slightly above it (finite-workload softening).
        assert 0.5 * bound <= rate <= 1.25 * bound, (router, rate)
    # The RoCo and Path-Sensitive designs must stay competitive with the
    # generic router's saturation point (within ~20%).
    assert data["roco"] >= 0.8 * data["generic"]
    assert data["path_sensitive"] >= 0.8 * data["generic"]
