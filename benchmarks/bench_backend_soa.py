"""Struct-of-arrays backend: simulated cycles/sec over the object model.

Times matched pairs of runs — ``backend="object"`` vs ``backend="soa"``
on identical configs — and asserts that (a) the records are
bit-identical (the conformance grid's contract, re-checked on the cells
we time) and (b) the SoA engine simulates at least 5x as many cycles
per second on the featured cell: the paper's 8x8 RoCo mesh under
uniform traffic at 0.05 flits/node/cycle with the full-sweep scheduler.

Full-sweep at low load is where the array engine's structural wins —
no per-flit objects, occupancy masks instead of attribute-chasing
sweeps — show up purest, and it is the regime the large fault-sweep
studies run in.  The other cells are informational: the generic router
(more allocator work per router-cycle) and a loaded active-scheduler
point, where both backends skip dormant routers and the gap legally
narrows.

Methodology matches ``bench_activity_core``: CPU time via
``process_time``, min over repeated interleaved pairs — external load
only ever adds time, so the minimum is the most reproducible estimator.
The registered *headline* is the deterministic conformant-cell fraction
(the regression gate's drift check needs a noise-free metric); the
measured speedup rides in the artifact's details and is floored at 5x
inside the benchmark itself, so a quick-tier benchbed run fails loudly
if the array engine loses its edge.
"""

from __future__ import annotations

import time
from dataclasses import replace

from conftest import once

from repro.core.config import SimulationConfig
from repro.core.simulator import run_simulation
from repro.harness.benchbed import Outcome, Threshold, benchmark
from repro.harness.export import result_record

#: Required SoA/object cycles-per-second ratio on the featured cell.
SPEEDUP_FLOOR = 5.0

#: Repeated pairs on the featured cell; min-of-N absorbs machine noise.
REPEATS = 5

#: (label, injection rate, full_sweep, router).  First row is featured.
CELLS = (
    ("roco-sweep", 0.05, True, "roco"),
    ("generic-sweep", 0.05, True, "generic"),
    ("roco-active", 0.20, False, "roco"),
)


def cell_config(
    rate: float, router: str, warmup: int = 150, measure: int = 900
) -> SimulationConfig:
    return SimulationConfig(
        width=8,
        height=8,
        router=router,
        routing="xy",
        traffic="uniform",
        injection_rate=rate,
        seed=7,
        warmup_packets=warmup,
        measure_packets=measure,
        max_cycles=40_000,
    )


def timed_pair(config: SimulationConfig, full_sweep: bool):
    """One interleaved object/SoA pair on the same config."""
    t0 = time.process_time()
    reference = run_simulation(config, full_sweep=full_sweep)
    t1 = time.process_time()
    fast = run_simulation(replace(config, backend="soa"), full_sweep=full_sweep)
    t2 = time.process_time()
    return reference, fast, t1 - t0, t2 - t1


def measure(
    cells=CELLS,
    repeats: int = REPEATS,
    warmup: int = 150,
    measure_pkts: int = 900,
    absorb=None,
):
    rows = []
    for index, (label, rate, full_sweep, router) in enumerate(cells):
        pair_count = repeats if index == 0 else 2
        object_times, soa_times = [], []
        cycles = None
        match = True
        for _ in range(pair_count):
            config = cell_config(rate, router, warmup, measure_pkts)
            reference, fast, t_obj, t_soa = timed_pair(config, full_sweep)
            match = match and result_record(fast) == result_record(reference)
            if absorb is not None:
                absorb(reference)
                absorb(fast)
            object_times.append(t_obj)
            soa_times.append(t_soa)
            cycles = reference.cycles
        t_obj, t_soa = min(object_times), min(soa_times)
        rows.append(
            {
                "cell": label,
                "match": match,
                "cycles": cycles,
                "object_s": t_obj,
                "soa_s": t_soa,
                "object_cps": cycles / max(t_obj, 1e-9),
                "soa_cps": cycles / max(t_soa, 1e-9),
                "speedup": t_obj / max(t_soa, 1e-9),
            }
        )
    return rows


def render_rows(rows) -> str:
    lines = [
        f"{'cell':>14} {'match':>5} {'cycles':>7} {'object':>9} {'soa':>9} "
        f"{'obj c/s':>9} {'soa c/s':>9} {'speedup':>8}"
    ]
    for row in rows:
        lines.append(
            f"{row['cell']:>14} {'yes' if row['match'] else 'NO':>5} "
            f"{row['cycles']:>7} {row['object_s']:>8.3f}s "
            f"{row['soa_s']:>8.3f}s {row['object_cps']:>9.0f} "
            f"{row['soa_cps']:>9.0f} {row['speedup']:>7.2f}x"
        )
    return "\n".join(lines)


@benchmark(
    "backend_soa",
    headline="conformant_cells",
    unit="fraction",
    direction="higher",
    floor=1.0,
)
def bench(ctx):
    """Fraction of timed cells where both backends agree bit-for-bit."""
    cells = ctx.pick(quick=CELLS[:1], full=CELLS)
    repeats = ctx.pick(quick=2, full=REPEATS)
    warmup, measure_pkts = ctx.pick(quick=(60, 250), full=(150, 900))
    rows = measure(cells, repeats, warmup, measure_pkts, absorb=ctx.absorb)
    table = render_rows(rows)
    Threshold("soa_conformant_cells", floor=1.0).check(
        sum(row["match"] for row in rows) / len(rows), context=table
    )
    # The perf contract lives here rather than in the headline: the
    # featured cell must clear 5x on every tier, quick included.
    Threshold("soa_speedup_roco_sweep", floor=SPEEDUP_FLOOR).check(
        rows[0]["speedup"], context=table
    )
    return Outcome(
        sum(row["match"] for row in rows) / len(rows),
        details={
            "rows": rows,
            "speedup_featured": rows[0]["speedup"],
            "soa_cps_featured": rows[0]["soa_cps"],
        },
    )


def test_backend_soa_speedup(benchmark):
    rows = once(benchmark, measure)
    print()
    print(render_rows(rows))

    assert all(row["match"] for row in rows), "backends diverged on a timed cell"
    featured = rows[0]
    assert featured["cell"] == "roco-sweep"
    # Headline criterion: the array engine must simulate >= 5x the
    # cycles/sec of the object model on the featured cell.  The benchbed
    # threshold carries the measured table into the failure message.
    Threshold("soa_speedup_roco_sweep", floor=SPEEDUP_FLOOR).check(
        featured["speedup"], context=render_rows(rows)
    )
    # The informational cells must still be wins, just not 5x ones: the
    # generic router spends more of its time in allocator logic shared
    # by both backends, and the active scheduler already skips dormant
    # routers for the object model.
    for row in rows[1:]:
        Threshold(f"soa_speedup_{row['cell']}", floor=1.2).check(
            row["speedup"], context=render_rows(rows)
        )
