"""Ablation: buffer-depth sensitivity.

The paper fixes total buffering at 60 flits/router for fairness.  This
ablation sweeps per-VC depth for the RoCo router to show where the
credit round-trip stops being hidden (depth ~2) and where extra depth
stops paying (the saturation buffer wall).
"""

from conftest import once

from repro.core.config import RouterConfig, SimulationConfig
from repro.core.simulator import run_simulation
from repro.harness import report
from repro.harness.benchbed import Outcome, benchmark

DEPTHS = (2, 3, 5, 8)
RATE = 0.28


def latency(
    depth: int, sim=run_simulation, warmup: int = 150, measure: int = 900
) -> float:
    router_config = RouterConfig.for_architecture("roco", buffer_depth=depth)
    config = SimulationConfig(
        width=8,
        height=8,
        router="roco",
        routing="xy",
        traffic="uniform",
        injection_rate=RATE,
        router_config=router_config,
        warmup_packets=warmup,
        measure_packets=measure,
        seed=7,
        max_cycles=60_000,
    )
    return sim(config).average_latency


@benchmark(
    "ablation_buffers",
    headline="depth2_over_depth5_latency",
    unit="x",
    direction="higher",
)
def bench(ctx):
    """Latency penalty of starved (depth-2) buffers vs the paper's depth 5."""
    depths = ctx.pick(quick=(2, 5), full=DEPTHS)
    warmup, measure = ctx.pick(quick=(60, 250), full=(150, 900))
    curve = [(d, latency(d, ctx.run, warmup, measure)) for d in depths]
    by_depth = dict(curve)
    return Outcome(
        by_depth[2] / by_depth[5], details={"latency_by_depth": curve}
    )


def test_ablation_buffer_depth(benchmark):
    def sweep():
        return {"roco": [(d, latency(d)) for d in DEPTHS]}

    data = once(benchmark, sweep)
    print()
    print(
        report.render_curves(
            data,
            x_label="VC depth",
            title=f"== Ablation: per-VC buffer depth at {RATE} flits/node/cycle ==",
        )
    )

    curve = dict(data["roco"])
    # Starved buffers (depth 2 cannot hide the 2-cycle credit loop plus
    # a 4-flit worm) must hurt badly relative to the paper's depth 5.
    assert curve[2] > 1.2 * curve[5]
    # Deepening beyond the paper's choice gives diminishing returns.
    assert curve[8] > 0.8 * curve[5]
    # Monotone improvement from 2 -> 5.
    assert curve[2] > curve[3] > curve[5]
