"""Ablation: the Mirroring Effect vs a plain separable 2x2 allocator.

DESIGN.md calls out the Mirror allocator as a headline design choice
(Section 3.3: maximal matching from one global arbiter per module).
This ablation replaces it with a blind two-stage separable allocator
and measures what the guarantee is worth under load.
"""

from conftest import once

from repro.core.config import RouterConfig, SimulationConfig
from repro.core.simulator import run_simulation
from repro.harness import report
from repro.harness.benchbed import Outcome, benchmark

RATES = (0.20, 0.30, 0.38)


def run(
    mirror: bool,
    rate: float,
    sim=run_simulation,
    warmup: int = 150,
    measure: int = 900,
):
    router_config = RouterConfig.for_architecture("roco", mirror_allocation=mirror)
    config = SimulationConfig(
        width=8,
        height=8,
        router="roco",
        routing="xy",
        traffic="uniform",
        injection_rate=rate,
        router_config=router_config,
        warmup_packets=warmup,
        measure_packets=measure,
        seed=7,
        max_cycles=40_000,
    )
    return sim(config)


@benchmark(
    "ablation_mirror",
    headline="sequential_over_mirror_latency_high_load",
    unit="x",
    direction="higher",
)
def bench(ctx):
    """What the Mirroring Effect's matching guarantee is worth under load."""
    rates = ctx.pick(quick=(RATES[-1],), full=RATES)
    warmup, measure = ctx.pick(quick=(60, 250), full=(150, 900))
    curves = {
        label: [
            (rate, run(flag, rate, ctx.run, warmup, measure).average_latency)
            for rate in rates
        ]
        for label, flag in (("mirror", True), ("sequential", False))
    }
    high = rates[-1]
    ratio = dict(curves["sequential"])[high] / dict(curves["mirror"])[high]
    return Outcome(ratio, details={"curves": curves})


def test_ablation_mirror_allocator(benchmark):
    def sweep():
        return {
            label: [(rate, run(mirror, rate).average_latency) for rate in RATES]
            for label, mirror in (("mirror", True), ("sequential", False))
        }

    data = once(benchmark, sweep)
    print()
    print(
        report.render_curves(
            data,
            x_label="inj rate",
            title="== Ablation: RoCo switch allocation (latency, cycles) ==",
        )
    )

    by_rate = {
        rate: (dict(data["mirror"])[rate], dict(data["sequential"])[rate])
        for rate in RATES
    }
    # The Mirroring Effect must never lose, and must win visibly once
    # contention appears (the matching guarantee is a high-load feature).
    for rate, (mirror, sequential) in by_rate.items():
        assert mirror <= sequential * 1.02, rate
    high_mirror, high_sequential = by_rate[RATES[-1]]
    assert high_mirror < high_sequential
