"""Ablation: look-ahead routing (Section 3.1).

Disabling look-ahead charges RoCo head flits the same post-arrival
Routing Computation cycle the generic router pays, isolating how much
of RoCo's latency advantage comes from moving RC off the critical path.
"""

from conftest import once

from repro.core.config import RouterConfig, SimulationConfig
from repro.core.simulator import run_simulation
from repro.harness import report

RATES = (0.05, 0.20, 0.30)


def run(lookahead: bool, rate: float):
    router_config = RouterConfig.for_architecture(
        "roco", lookahead_routing=lookahead
    )
    config = SimulationConfig(
        width=8,
        height=8,
        router="roco",
        routing="xy",
        traffic="uniform",
        injection_rate=rate,
        router_config=router_config,
        warmup_packets=150,
        measure_packets=900,
        seed=7,
        max_cycles=40_000,
    )
    return run_simulation(config)


def test_ablation_lookahead_routing(benchmark):
    def sweep():
        return {
            label: [(rate, run(flag, rate).average_latency) for rate in RATES]
            for label, flag in (("lookahead", True), ("local RC", False))
        }

    data = once(benchmark, sweep)
    print()
    print(
        report.render_curves(
            data,
            x_label="inj rate",
            title="== Ablation: look-ahead routing (latency, cycles) ==",
        )
    )

    for rate in RATES:
        with_la = dict(data["lookahead"])[rate]
        without = dict(data["local RC"])[rate]
        # Look-ahead saves roughly one cycle per hop for head flits:
        # ~3-6 cycles end-to-end on an 8x8 mesh.
        assert with_la < without
        assert without - with_la > 2.0
