"""Ablation: look-ahead routing (Section 3.1).

Disabling look-ahead charges RoCo head flits the same post-arrival
Routing Computation cycle the generic router pays, isolating how much
of RoCo's latency advantage comes from moving RC off the critical path.
"""

from conftest import once

from repro.core.config import RouterConfig, SimulationConfig
from repro.core.simulator import run_simulation
from repro.harness import report
from repro.harness.benchbed import Outcome, benchmark

RATES = (0.05, 0.20, 0.30)


def run(
    lookahead: bool,
    rate: float,
    sim=run_simulation,
    warmup: int = 150,
    measure: int = 900,
):
    router_config = RouterConfig.for_architecture(
        "roco", lookahead_routing=lookahead
    )
    config = SimulationConfig(
        width=8,
        height=8,
        router="roco",
        routing="xy",
        traffic="uniform",
        injection_rate=rate,
        router_config=router_config,
        warmup_packets=warmup,
        measure_packets=measure,
        seed=7,
        max_cycles=40_000,
    )
    return sim(config)


@benchmark(
    "ablation_lookahead",
    headline="lookahead_saving_cycles_low_load",
    unit="cycles",
    direction="higher",
)
def bench(ctx):
    """End-to-end cycles look-ahead RC saves at the lowest operating point."""
    rates = ctx.pick(quick=(RATES[0],), full=RATES)
    warmup, measure = ctx.pick(quick=(60, 250), full=(150, 900))
    curves = {
        label: [
            (rate, run(flag, rate, ctx.run, warmup, measure).average_latency)
            for rate in rates
        ]
        for label, flag in (("lookahead", True), ("local RC", False))
    }
    low = rates[0]
    saving = dict(curves["local RC"])[low] - dict(curves["lookahead"])[low]
    return Outcome(saving, details={"curves": curves})


def test_ablation_lookahead_routing(benchmark):
    def sweep():
        return {
            label: [(rate, run(flag, rate).average_latency) for rate in RATES]
            for label, flag in (("lookahead", True), ("local RC", False))
        }

    data = once(benchmark, sweep)
    print()
    print(
        report.render_curves(
            data,
            x_label="inj rate",
            title="== Ablation: look-ahead routing (latency, cycles) ==",
        )
    )

    for rate in RATES:
        with_la = dict(data["lookahead"])[rate]
        without = dict(data["local RC"])[rate]
        # Look-ahead saves roughly one cycle per hop for head flits:
        # ~3-6 cycles end-to-end on an 8x8 mesh.
        assert with_la < without
        assert without - with_la > 2.0
