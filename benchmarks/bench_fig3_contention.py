"""Reproduces Figure 3 — contention probabilities vs offered load."""

from conftest import BENCH, EXECUTOR, curve_value, once

from repro.harness import figure3, report
from repro.harness.benchbed import Outcome, benchmark


@benchmark(
    "fig3_contention",
    headline="row_contention_ratio_generic_over_roco",
    unit="x",
    direction="higher",
)
def bench(ctx):
    """How much more row-input contention the generic router suffers."""
    scale = ctx.scale(BENCH)
    data = figure3(scale, executor=ctx.executor)
    high = scale.contention_rates[-1]
    generic = curve_value(data, "row_xy", "generic", high)
    roco = curve_value(data, "row_xy", "roco", high)
    return Outcome(generic / max(roco, 1e-9), details={"panels": data})


def test_figure3_contention_probabilities(benchmark):
    data = once(benchmark, lambda: figure3(BENCH, executor=EXECUTOR))
    print()
    for panel, title in (
        ("row_xy", "(a) row input, XY routing"),
        ("column_xy", "(b) column input, XY routing"),
        ("adaptive", "(c) adaptive routing"),
    ):
        print(
            report.render_curves(
                data[panel],
                x_label="inj rate",
                title=f"== Figure 3 {title} ==",
            )
        )
        print()

    high = BENCH.contention_rates[-1]

    def at(panel, router, rate):
        return curve_value(data, panel, router, rate)

    # Shape target: the generic router suffers the highest contention;
    # RoCo the least (Figure 3's headline).
    for panel in ("row_xy", "adaptive"):
        assert at(panel, "generic", high) > at(panel, "roco", high)

    # Contention grows with offered load for every router.
    low = BENCH.contention_rates[0]
    for router in ("generic", "path_sensitive", "roco"):
        assert at("row_xy", router, high) >= at("row_xy", router, low)

    # Under XY, row inputs contend more than column inputs for the
    # generic router ("X first, Y next" asymmetry, Section 3.2).
    assert at("row_xy", "generic", high) > at("column_xy", "generic", high)
