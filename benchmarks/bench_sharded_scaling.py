"""Sharded tile engine: equivalence cells and tile-parallel throughput.

Runs matched pairs — the single-process reference vs the sharded tile
engine (worker processes, docs/sharded-scaling.md) on identical
configs — and asserts record-level bit-identity on every cell.  The
registered *headline* is the deterministic equivalent-cell count (the
regression gate needs a noise-free metric); wall-clock and simulated
cycles/sec per cell ride in the artifact's details, informational only:
at benchmark packet counts the per-cycle pipe round-trips dominate, so
sharding pays off in mesh capacity (64x64 runs that a single process
cannot hold comfortably), not in small-mesh speed.
"""

from __future__ import annotations

import time

from conftest import once

from repro.core.config import SimulationConfig
from repro.core.simulator import Simulator
from repro.harness.benchbed import Outcome, Threshold, benchmark
from repro.harness.sharded import compare_records, run_sharded_simulation

#: (label, k, shards, router, full_sweep).
CELLS = (
    ("8x8-2x2-roco", 8, (2, 2), "roco", False),
    ("8x8-2x2-generic", 8, (2, 2), "generic", False),
    ("8x8-1x2-roco-sweep", 8, (1, 2), "roco", True),
    ("16x16-2x2-roco", 16, (2, 2), "roco", False),
    ("16x16-2x2-generic", 16, (2, 2), "generic", False),
    ("32x32-4x4-roco", 32, (4, 4), "roco", False),
)


def cell_config(
    k: int, router: str, warmup: int, measure: int
) -> SimulationConfig:
    return SimulationConfig(
        width=k,
        height=k,
        router=router,
        routing="xy",
        traffic="uniform",
        injection_rate=0.15,
        warmup_packets=warmup,
        measure_packets=measure,
        seed=7,
        max_cycles=40_000,
    )


def measure(cells=CELLS, warmup: int = 40, measure_pkts: int = 160, absorb=None):
    rows = []
    for label, k, shards, router, full_sweep in cells:
        config = cell_config(k, router, warmup, measure_pkts)
        t0 = time.monotonic()
        reference = Simulator(config, full_sweep=full_sweep).run()
        t1 = time.monotonic()
        sharded = run_sharded_simulation(
            config, shards, full_sweep=full_sweep
        )
        t2 = time.monotonic()
        if absorb is not None:
            absorb(reference)
            absorb(sharded)
        mismatches = compare_records(reference, sharded)
        rows.append(
            {
                "cell": label,
                "match": not mismatches,
                "mismatches": mismatches,
                "cycles": reference.cycles,
                "tiles": len(sharded.tile_scheduler),
                "reference_s": t1 - t0,
                "sharded_s": t2 - t1,
                "reference_cps": reference.cycles / max(t1 - t0, 1e-9),
                "sharded_cps": sharded.cycles / max(t2 - t1, 1e-9),
            }
        )
    return rows


def render_rows(rows) -> str:
    lines = [
        f"{'cell':>20} {'match':>5} {'cycles':>7} {'tiles':>5} "
        f"{'reference':>10} {'sharded':>10}"
    ]
    for row in rows:
        lines.append(
            f"{row['cell']:>20} {'yes' if row['match'] else 'NO':>5} "
            f"{row['cycles']:>7} {row['tiles']:>5} "
            f"{row['reference_s']:>9.2f}s {row['sharded_s']:>9.2f}s"
        )
    return "\n".join(lines)


@benchmark(
    "sharded_scaling",
    headline="equivalent_cells",
    unit="cells",
    direction="higher",
)
def bench(ctx):
    """Cells where the sharded run is bit-identical to the reference."""
    cells = ctx.pick(quick=CELLS[:4], full=CELLS)
    warmup, measure_pkts = ctx.pick(quick=(40, 160), full=(80, 400))
    rows = measure(cells, warmup, measure_pkts, absorb=ctx.absorb)
    table = render_rows(rows)
    equivalent = sum(row["match"] for row in rows)
    Threshold("sharded_equivalent_cells", floor=float(len(rows))).check(
        float(equivalent), context=table
    )
    return Outcome(
        float(equivalent),
        floor=float(len(rows)),
        details={"rows": rows},
    )


def test_sharded_equivalence_cells(benchmark):
    rows = once(benchmark, measure)
    print()
    print(render_rows(rows))
    for row in rows:
        assert row["match"], (row["cell"], row["mismatches"])
