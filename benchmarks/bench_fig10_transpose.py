"""Reproduces Figure 10 — latency vs injection rate, transpose traffic."""

from conftest import EXECUTOR, once

from repro.harness import ExperimentScale, figure10, report

#: Transpose saturates much earlier than uniform (its row/column flows
#: concentrate on the diagonal), so the sweep uses lower rates.
TRANSPOSE_SCALE = ExperimentScale(
    name="bench-transpose",
    width=8,
    height=8,
    warmup_packets=150,
    measure_packets=900,
    seeds=(7,),
    rates=(0.05, 0.12, 0.20),
    max_cycles=40_000,
)


def test_figure10_transpose_latency(benchmark):
    data = once(benchmark, lambda: figure10(TRANSPOSE_SCALE, executor=EXECUTOR))
    print()
    print(report.render_latency_figure(data, "Figure 10", "transpose"))

    def lat(routing, router, rate):
        return dict(data[routing][router])[rate]

    # RoCo below generic at every sub-saturation point; transpose
    # saturates abruptly, so the top rate gets a tolerance band.
    for routing in ("xy", "xy-yx", "adaptive"):
        for rate in TRANSPOSE_SCALE.rates[:-1]:
            assert lat(routing, "roco", rate) < lat(routing, "generic", rate)
        high = TRANSPOSE_SCALE.rates[-1]
        assert lat(routing, "roco", high) < 1.55 * lat(routing, "generic", high)

    # Alternate paths help transpose: XY-YX spreads the permutation's
    # row/column flows and clearly beats deterministic XY at high load.
    high = TRANSPOSE_SCALE.rates[-1]
    assert lat("xy-yx", "roco", high) < lat("xy", "roco", high)
    assert lat("adaptive", "roco", high) < lat("xy", "roco", high)
