"""Reproduces Figure 10 — latency vs injection rate, transpose traffic."""

from conftest import EXECUTOR, curve_value, once

from repro.harness import ExperimentScale, figure10, report
from repro.harness.benchbed import Outcome, benchmark

#: Transpose saturates much earlier than uniform (its row/column flows
#: concentrate on the diagonal), so the sweep uses lower rates.
TRANSPOSE_SCALE = ExperimentScale(
    name="bench-transpose",
    width=8,
    height=8,
    warmup_packets=150,
    measure_packets=900,
    seeds=(7,),
    rates=(0.05, 0.12, 0.20),
    max_cycles=40_000,
)


@benchmark(
    "fig10_transpose",
    headline="roco_latency_gap_low_load_xy",
    unit="fraction",
    direction="higher",
)
def bench(ctx):
    """RoCo's low-load advantage under the transpose permutation."""
    scale = ctx.scale(TRANSPOSE_SCALE)
    data = figure10(scale, executor=ctx.executor)
    low = scale.rates[0]
    gap = 1 - curve_value(data, "xy", "roco", low) / curve_value(
        data, "xy", "generic", low
    )
    return Outcome(gap, details={"curves": data})


def test_figure10_transpose_latency(benchmark):
    data = once(benchmark, lambda: figure10(TRANSPOSE_SCALE, executor=EXECUTOR))
    print()
    print(report.render_latency_figure(data, "Figure 10", "transpose"))

    def lat(routing, router, rate):
        return curve_value(data, routing, router, rate)

    # RoCo below generic at every sub-saturation point; transpose
    # saturates abruptly, so the top rate gets a tolerance band.
    for routing in ("xy", "xy-yx", "adaptive"):
        for rate in TRANSPOSE_SCALE.rates[:-1]:
            assert lat(routing, "roco", rate) < lat(routing, "generic", rate)
        high = TRANSPOSE_SCALE.rates[-1]
        assert lat(routing, "roco", high) < 1.55 * lat(routing, "generic", high)

    # Alternate paths help transpose: XY-YX spreads the permutation's
    # row/column flows and clearly beats deterministic XY at high load.
    high = TRANSPOSE_SCALE.rates[-1]
    assert lat("xy-yx", "roco", high) < lat("xy", "roco", high)
    assert lat("adaptive", "roco", high) < lat("xy", "roco", high)
