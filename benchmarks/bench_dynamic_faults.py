"""Graceful degradation under *runtime* fault campaigns.

The paper's Figure 11/12 sweeps apply faults statically before the run.
This benchmark asks the harder operational question: routers die while
traffic is in flight — buffered worms must be salvaged, committed
look-ahead routes severed and re-routed — and the architectures are
compared under the *identical* fault timeline.  Schedules are prefixes
of one staggered critical-fault sequence (k = 0, 1, 2, 4 kills), so
each curve point adds faults without moving the earlier ones.
"""

from conftest import EXECUTOR, once

from repro.core.config import SimulationConfig
from repro.core.types import NodeId
from repro.faults import Component, ComponentFault, FaultEvent, FaultSchedule
from repro.harness.benchbed import Outcome, benchmark
from repro.harness.campaign import run_campaign
from repro.harness.parallel import SimJob

ARCHITECTURES = ("generic", "path_sensitive", "roco")
FAULT_COUNTS = (0, 1, 2, 4)

#: One staggered kill sequence; every schedule below is a prefix of it.
#: Distinct rows and columns so each kill severs fresh XY paths.
KILL_SEQUENCE = (
    FaultEvent(40, ComponentFault(NodeId(2, 2), Component.VA, "row")),
    FaultEvent(80, ComponentFault(NodeId(5, 3), Component.CROSSBAR, "column")),
    FaultEvent(120, ComponentFault(NodeId(3, 5), Component.VA, "row")),
    FaultEvent(160, ComponentFault(NodeId(6, 6), Component.MUX_DEMUX, "column")),
)


def config_for(
    router: str, warmup: int = 100, measure: int = 500
) -> SimulationConfig:
    return SimulationConfig(
        width=8,
        height=8,
        router=router,
        routing="xy",
        traffic="uniform",
        injection_rate=0.15,
        warmup_packets=warmup,
        measure_packets=measure,
        max_cycles=30_000,
        seed=7,
    )


def run_curves(
    executor=EXECUTOR, warmup: int = 100, measure: int = 500
) -> dict[str, dict[int, float]]:
    """completion probability per (architecture, cumulative fault count)."""
    jobs = []
    for router in ARCHITECTURES:
        for count in FAULT_COUNTS:
            schedule = FaultSchedule(list(KILL_SEQUENCE[:count]))
            jobs.append(
                SimJob.of(config_for(router, warmup, measure), schedule=schedule)
            )
    records = executor.run_jobs(jobs)
    curves: dict[str, dict[int, float]] = {}
    index = 0
    for router in ARCHITECTURES:
        curves[router] = {}
        for count in FAULT_COUNTS:
            curves[router][count] = records[index]["completion_probability"]
            index += 1
    return curves


@benchmark(
    "dynamic_faults",
    headline="roco_completion_4_kills",
    unit="probability",
    direction="higher",
)
def bench(ctx):
    """RoCo's completion with 4 staggered mid-run kills on the mesh."""
    warmup, measure = ctx.pick(quick=(60, 250), full=(100, 500))
    curves = run_curves(ctx.executor, warmup, measure)
    campaign = run_campaign(
        config_for("roco", warmup, measure), FaultSchedule(list(KILL_SEQUENCE))
    )
    ctx.absorb(campaign.result)
    staircase = [
        {
            "fault_count": point.fault_count,
            "delivered_fraction": point.delivered_fraction,
        }
        for point in campaign.probe.delivered_by_fault_count()
    ]
    return Outcome(
        curves["roco"][4],
        details={"curves": curves, "roco_staircase": staircase},
    )


def test_dynamic_fault_degradation(benchmark):
    curves = once(benchmark, run_curves)

    print()
    print("Dynamic fault campaign (8x8, XY, staggered kills mid-run)")
    header = "  ".join(f"k={count}" for count in FAULT_COUNTS)
    print(f"{'router':>16s}  {header}")
    for router in ARCHITECTURES:
        row = "  ".join(f"{curves[router][k]:.3f}" for k in FAULT_COUNTS)
        print(f"{router:>16s}  {row}")

    for router in ARCHITECTURES:
        curve = curves[router]
        # Fault-free completion is (near-)perfect.
        assert curve[0] > 0.95
        # Completion degrades (weakly) monotonically with fault count.
        for lo, hi in zip(FAULT_COUNTS, FAULT_COUNTS[1:]):
            assert curve[hi] <= curve[lo] + 0.02, (
                f"{router}: completion rose from k={lo} to k={hi}"
            )

    # Graceful degradation: RoCo rides above both baselines at every
    # fault count, strictly so once the mesh has accumulated kills.
    for count in FAULT_COUNTS[1:]:
        assert curves["roco"][count] >= curves["generic"][count]
        assert curves["roco"][count] >= curves["path_sensitive"][count]
    assert curves["roco"][4] > curves["generic"][4]

    # The resilience staircase from one instrumented RoCo campaign:
    # service measured against faults accumulated at injection time.
    campaign = run_campaign(
        config_for("roco"), FaultSchedule(list(KILL_SEQUENCE))
    )
    assert campaign.conserved
    staircase = campaign.probe.delivered_by_fault_count()
    print()
    for point in staircase:
        print(
            f"  {point.fault_count} faults at injection -> "
            f"{point.delivered_fraction:.3f} delivered "
            f"({point.delivered}/{point.generated})"
        )
    assert staircase[0].delivered_fraction >= staircase[-1].delivered_fraction
