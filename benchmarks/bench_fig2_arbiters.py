"""Reproduces Figure 2 — VA arbiter inventory comparison."""

from conftest import once

from repro.harness import figure2, report
from repro.harness.benchbed import Outcome, benchmark

#: VCs per port in the paper's configuration.
V = 3


@benchmark(
    "fig2_arbiters",
    headline="request_line_ratio_generic_over_roco",
    unit="x",
    direction="higher",
)
def bench(ctx):
    """Analytic arbiter inventory: how much wiring RoCo saves (R=>v)."""
    ctx.stamp(analytic=True, v=V)
    data = figure2(V)
    generic = data["generic R=>v"].total_request_lines
    roco = data["roco R=>v"].total_request_lines
    return Outcome(
        generic / roco,
        details={
            "total_request_lines": {
                name: inv.total_request_lines for name, inv in data.items()
            }
        },
    )


def test_figure2_arbiter_inventory(benchmark):
    v = V
    data = once(benchmark, lambda: figure2(v))
    rows = [
        [
            name,
            f"{inv.first_stage_count} x {inv.first_stage_width}:1",
            f"{inv.second_stage_count} x {inv.second_stage_width}:1",
            inv.total_request_lines,
        ]
        for name, inv in data.items()
    ]
    print()
    print(
        report.render_table(
            ["allocator", "stage 1", "stage 2", "request lines"],
            rows,
            title="== Figure 2: VA arbiter inventory (v = 3) ==",
        )
    )

    # "SMALLER (2v:1 vs 5v:1) and FEWER (4v vs 5v) arbiters".
    assert data["generic R=>v"].second_stage_count == 5 * v
    assert data["roco R=>v"].second_stage_count == 4 * v
    assert data["generic R=>v"].second_stage_width == 5 * v
    assert data["roco R=>v"].second_stage_width == 2 * v
    for variant in ("R=>v", "R=>P"):
        assert (
            data[f"roco {variant}"].total_request_lines
            < data[f"generic {variant}"].total_request_lines
        )
