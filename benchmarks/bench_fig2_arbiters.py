"""Reproduces Figure 2 — VA arbiter inventory comparison."""

from conftest import once

from repro.harness import figure2, report


def test_figure2_arbiter_inventory(benchmark):
    v = 3
    data = once(benchmark, lambda: figure2(v))
    rows = [
        [
            name,
            f"{inv.first_stage_count} x {inv.first_stage_width}:1",
            f"{inv.second_stage_count} x {inv.second_stage_width}:1",
            inv.total_request_lines,
        ]
        for name, inv in data.items()
    ]
    print()
    print(
        report.render_table(
            ["allocator", "stage 1", "stage 2", "request lines"],
            rows,
            title="== Figure 2: VA arbiter inventory (v = 3) ==",
        )
    )

    # "SMALLER (2v:1 vs 5v:1) and FEWER (4v vs 5v) arbiters".
    assert data["generic R=>v"].second_stage_count == 5 * v
    assert data["roco R=>v"].second_stage_count == 4 * v
    assert data["generic R=>v"].second_stage_width == 5 * v
    assert data["roco R=>v"].second_stage_width == 2 * v
    for variant in ("R=>v", "R=>P"):
        assert (
            data[f"roco {variant}"].total_request_lines
            < data[f"generic {variant}"].total_request_lines
        )
