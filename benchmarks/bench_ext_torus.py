"""Extension: mesh vs torus (generic router, XY + dateline VCs).

The paper names "2D mesh and torus" as the de-facto NoC topologies but
evaluates only the mesh.  This extension runs the generic router on
both: wraparound halves the average hop count (16/3 -> ~4 x 2/... on a
ring: k/4 per dimension) and roughly doubles bisection bandwidth, at
the cost of the dateline VC discipline that breaks the ring cycles.
"""

from conftest import once

from repro.core.config import SimulationConfig
from repro.core.simulator import run_simulation
from repro.harness import report
from repro.harness.benchbed import Outcome, benchmark

RATES = (0.10, 0.25, 0.40)


def run(
    topology: str,
    rate: float,
    sim=run_simulation,
    warmup: int = 150,
    measure: int = 900,
):
    config = SimulationConfig(
        width=8,
        height=8,
        topology=topology,
        router="generic",
        routing="xy",
        traffic="uniform",
        injection_rate=rate,
        warmup_packets=warmup,
        measure_packets=measure,
        seed=7,
        max_cycles=60_000,
    )
    return sim(config)


@benchmark(
    "ext_torus",
    headline="torus_over_mesh_latency_low_load",
    unit="x",
    direction="lower",
)
def bench(ctx):
    """Latency the torus wraparound buys back at low load."""
    rates = ctx.pick(quick=(RATES[0],), full=RATES)
    warmup, measure = ctx.pick(quick=(60, 250), full=(150, 900))
    curves = {
        topology: [
            (
                rate,
                run(topology, rate, ctx.run, warmup, measure).average_latency,
            )
            for rate in rates
        ]
        for topology in ("mesh", "torus")
    }
    low = rates[0]
    ratio = dict(curves["torus"])[low] / dict(curves["mesh"])[low]
    return Outcome(ratio, details={"curves": curves})


def test_extension_torus(benchmark):
    def sweep():
        out = {}
        for topology in ("mesh", "torus"):
            out[topology] = [(rate, run(topology, rate)) for rate in RATES]
        return out

    data = once(benchmark, sweep)
    curves = {
        topology: [(rate, result.average_latency) for rate, result in points]
        for topology, points in data.items()
    }
    print()
    print(
        report.render_curves(
            curves,
            x_label="inj rate",
            title="== Extension: 8x8 mesh vs torus (generic router, latency) ==",
        )
    )

    mesh = dict(curves["mesh"])
    torus = dict(curves["torus"])
    for rate in RATES:
        # Wraparound shortens paths: the torus wins at every load.
        assert torus[rate] < mesh[rate], rate
        # And everything still completes (the dateline discipline holds).
        for _, result in data["torus"]:
            assert result.completion_probability == 1.0

    # Average hop count drops from 16/3 to ~4 (k/4 per dimension x 2).
    torus_hops = data["torus"][0][1].average_hops
    mesh_hops = data["mesh"][0][1].average_hops
    assert torus_hops < 0.85 * mesh_hops
