"""Shared configuration for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper at the
``BENCH`` scale (sized so the whole suite runs in minutes on a laptop),
prints the paper-style rows, and asserts the figure's *shape targets* —
who wins and by roughly what factor.  Swap ``BENCH`` for
``repro.harness.PAPER`` to run the paper's full dimensions.

The simulation grids behind the figures run through a shared
:class:`~repro.harness.parallel.ParallelExecutor`.  Environment knobs:

* ``REPRO_BENCH_WORKERS`` — worker processes (``0`` = all cores;
  default all cores, so the paper reproduction saturates the machine);
* ``REPRO_BENCH_CACHE`` — directory for the on-disk result cache, so a
  re-run of the suite replays cached records instead of simulating.

Parallel and cached runs produce records identical to serial ones (the
simulator is a pure function of its seeded config), so the benches'
shape assertions are unaffected by either knob.
"""

from __future__ import annotations

import os

from repro.harness import ExperimentScale
from repro.harness.parallel import ParallelExecutor, ResultCache


def _bench_executor() -> ParallelExecutor:
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "0"))
    cache_dir = os.environ.get("REPRO_BENCH_CACHE")
    cache = ResultCache(cache_dir) if cache_dir else None
    return ParallelExecutor(workers=workers, cache=cache)


#: Shared executor for every figure benchmark in this directory.
EXECUTOR = _bench_executor()

#: Benchmark scale: the paper's 8x8 mesh with reduced packet counts.
BENCH = ExperimentScale(
    name="bench",
    width=8,
    height=8,
    warmup_packets=150,
    measure_packets=900,
    seeds=(7,),
    rates=(0.05, 0.20, 0.30),
    contention_rates=(0.10, 0.30, 0.50),
    max_cycles=40_000,
)

#: Smaller scale for the fault sweeps (each fault run drains slowly).
BENCH_FAULTS = ExperimentScale(
    name="bench-faults",
    width=8,
    height=8,
    warmup_packets=100,
    measure_packets=500,
    seeds=(7,),
    rates=(0.30,),
    max_cycles=30_000,
)


def once(benchmark, func):
    """Run a reproduction exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)


def curve_value(data, routing: str, router: str, rate: float) -> float:
    """Look up one point of a latency-curve figure.

    Figures 8-10 return ``{routing: {router: [(rate, latency), ...]}}``;
    this indexes one point regardless of the rate grid in use, so the
    same lookup works at both the quick and full benchmark tiers.
    """
    return dict(data[routing][router])[rate]
