"""Shared configuration for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper at the
``BENCH`` scale (sized so the whole suite runs in minutes on a laptop),
prints the paper-style rows, and asserts the figure's *shape targets* —
who wins and by roughly what factor.  Swap ``BENCH`` for
``repro.harness.PAPER`` to run the paper's full dimensions.
"""

from __future__ import annotations

from repro.harness import ExperimentScale

#: Benchmark scale: the paper's 8x8 mesh with reduced packet counts.
BENCH = ExperimentScale(
    name="bench",
    width=8,
    height=8,
    warmup_packets=150,
    measure_packets=900,
    seeds=(7,),
    rates=(0.05, 0.20, 0.30),
    contention_rates=(0.10, 0.30, 0.50),
    max_cycles=40_000,
)

#: Smaller scale for the fault sweeps (each fault run drains slowly).
BENCH_FAULTS = ExperimentScale(
    name="bench-faults",
    width=8,
    height=8,
    warmup_packets=100,
    measure_packets=500,
    seeds=(7,),
    rates=(0.30,),
    max_cycles=30_000,
)


def once(benchmark, func):
    """Run a reproduction exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
