"""Reproduces Table 1 — VC buffer configuration per routing algorithm."""

from conftest import once

from repro.harness import report, table1
from repro.harness.benchbed import Outcome, benchmark

#: The paper's Table 1, verbatim.
PAPER_TABLE = {
    "adaptive": {
        "row_port1": ["dx", "tyx", "Injxy"],
        "row_port2": ["dx", "dx", "tyx"],
        "column_port1": ["dy", "txy", "Injyx"],
        "column_port2": ["dy", "txy", "txy"],
    },
    "xy-yx": {
        "row_port1": ["dx", "tyx", "Injxy"],
        "row_port2": ["dx", "dx", "tyx"],
        "column_port1": ["dy", "txy", "Injyx"],
        "column_port2": ["dy", "dy", "txy"],
    },
    "xy": {
        "row_port1": ["dx", "dx", "Injxy"],
        "row_port2": ["dx", "dx", "Injxy"],
        "column_port1": ["dy", "txy", "Injyx"],
        "column_port2": ["dy", "dy", "txy"],
    },
}


@benchmark(
    "table1_vc_config",
    headline="table_match_fraction",
    unit="fraction",
    direction="higher",
    floor=1.0,
)
def bench(ctx):
    """Fraction of Table-1 cells reproduced exactly (must be 1.0)."""
    ctx.stamp(analytic=True)
    data = table1()
    cells = [
        (mode, port) for mode, ports in PAPER_TABLE.items() for port in ports
    ]
    matches = sum(
        1
        for mode, port in cells
        if data.get(mode, {}).get(port) == PAPER_TABLE[mode][port]
    )
    return Outcome(matches / len(cells), details={"table": data})


def test_table1_vc_configuration(benchmark):
    data = once(benchmark, table1)
    print()
    print(report.render_table1(data))

    # Exact reproduction of the paper's table.
    assert data["adaptive"] == PAPER_TABLE["adaptive"]
    assert data["xy-yx"] == PAPER_TABLE["xy-yx"]
    assert data["xy"] == PAPER_TABLE["xy"]
