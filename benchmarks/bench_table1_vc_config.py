"""Reproduces Table 1 — VC buffer configuration per routing algorithm."""

from conftest import once

from repro.harness import report, table1


def test_table1_vc_configuration(benchmark):
    data = once(benchmark, table1)
    print()
    print(report.render_table1(data))

    # Exact reproduction of the paper's table.
    assert data["adaptive"] == {
        "row_port1": ["dx", "tyx", "Injxy"],
        "row_port2": ["dx", "dx", "tyx"],
        "column_port1": ["dy", "txy", "Injyx"],
        "column_port2": ["dy", "txy", "txy"],
    }
    assert data["xy-yx"] == {
        "row_port1": ["dx", "tyx", "Injxy"],
        "row_port2": ["dx", "dx", "tyx"],
        "column_port1": ["dy", "txy", "Injyx"],
        "column_port2": ["dy", "dy", "txy"],
    }
    assert data["xy"] == {
        "row_port1": ["dx", "dx", "Injxy"],
        "row_port2": ["dx", "dx", "Injxy"],
        "column_port1": ["dy", "txy", "Injyx"],
        "column_port2": ["dy", "dy", "txy"],
    }
