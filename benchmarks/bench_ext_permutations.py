"""Extension: adversarial bit-permutation workloads.

Bit-complement forces every packet across the bisection and
bit-reverse/shuffle concentrate flows — the standard adversarial suite
beyond the paper's workloads.  Checks that the architectural ordering
(RoCo/PS below generic) survives traffic the designs were not tuned
for, and that bit-complement is the hardest pattern for everyone.
"""

from conftest import once

from repro.core.config import SimulationConfig
from repro.core.simulator import run_simulation
from repro.harness import report
from repro.harness.benchbed import Outcome, benchmark

PATTERNS = ("uniform", "bit_complement", "bit_reverse", "shuffle")
ROUTERS = ("generic", "path_sensitive", "roco")
RATE = 0.12


def latency(
    router: str,
    traffic: str,
    sim=run_simulation,
    warmup: int = 120,
    measure: int = 700,
) -> float:
    config = SimulationConfig(
        width=8,
        height=8,
        router=router,
        routing="xy",
        traffic=traffic,
        injection_rate=RATE,
        warmup_packets=warmup,
        measure_packets=measure,
        seed=7,
        max_cycles=40_000,
    )
    return sim(config).average_latency


@benchmark(
    "ext_permutations",
    headline="bit_complement_roco_over_generic_latency",
    unit="x",
    direction="lower",
)
def bench(ctx):
    """RoCo vs generic on the hardest adversarial pattern (bit-complement)."""
    patterns = ctx.pick(quick=("uniform", "bit_complement"), full=PATTERNS)
    routers = ctx.pick(quick=("generic", "roco"), full=ROUTERS)
    warmup, measure = ctx.pick(quick=(60, 250), full=(120, 700))
    table = {
        traffic: {
            router: latency(router, traffic, ctx.run, warmup, measure)
            for router in routers
        }
        for traffic in patterns
    }
    hardest = table["bit_complement"]
    return Outcome(
        hardest["roco"] / hardest["generic"], details={"latency": table}
    )


def test_extension_permutation_traffic(benchmark):
    def sweep():
        return {
            traffic: {router: latency(router, traffic) for router in ROUTERS}
            for traffic in PATTERNS
        }

    data = once(benchmark, sweep)
    rows = [
        [traffic] + [f"{data[traffic][r]:.1f}" for r in ROUTERS]
        for traffic in PATTERNS
    ]
    print()
    print(
        report.render_table(
            ["traffic"] + list(ROUTERS),
            rows,
            title=f"== Extension: permutation workloads at {RATE} flits/node/cycle ==",
        )
    )

    for traffic in PATTERNS:
        assert data[traffic]["roco"] < data[traffic]["generic"], traffic
        assert data[traffic]["path_sensitive"] < data[traffic]["generic"], traffic

    # Bit-complement maximises path length, so it must cost the most
    # latency of the patterns for every router at this (low) rate.
    for router in ROUTERS:
        assert data["bit_complement"][router] == max(
            data[t][router] for t in PATTERNS
        ), router
