"""Reproduces Figure 12 — completion probability, message-centric faults."""

from conftest import BENCH_FAULTS, EXECUTOR, once

from repro.harness import fault_figure, report
from repro.harness.benchbed import Outcome, benchmark


@benchmark(
    "fig12_noncritical_faults",
    headline="min_roco_completion_xy",
    unit="probability",
    direction="higher",
)
def bench(ctx):
    """RoCo's worst completion under message-centric faults (recycling)."""
    scale = ctx.scale(BENCH_FAULTS)
    data = fault_figure(critical=False, scale=scale, executor=ctx.executor)
    worst = min(data["xy"]["roco"].values())
    return Outcome(worst, details={"completion": data})


def test_figure12_noncritical_fault_completion(benchmark):
    data = once(
        benchmark,
        lambda: fault_figure(
            critical=False, scale=BENCH_FAULTS, executor=EXECUTOR
        ),
    )
    print()
    print(report.render_fault_figure(data, "Figure 12 (message-centric faults)"))

    for routing in ("xy", "xy-yx", "adaptive"):
        per_router = data[routing]
        for count in (1, 2, 4):
            # Hardware recycling: RoCo bypasses every message-centric /
            # non-critical fault, keeping completion essentially perfect.
            assert per_router["roco"][count] >= 0.97
            # The baselines still lose whole nodes to the same faults.
            assert per_router["roco"][count] >= per_router["generic"][count]

    # RoCo's completion under *oblivious* routing stays close to the
    # adaptive one — "uniform fault-tolerance under all routing
    # algorithms" (Section 5.4).
    for count in (1, 2, 4):
        assert (
            abs(data["xy"]["roco"][count] - data["adaptive"]["roco"][count])
            < 0.05
        )
