"""Reproduces Figure 8 — latency vs injection rate, uniform random traffic."""

from conftest import BENCH, EXECUTOR, curve_value, once

from repro.harness import figure8, report
from repro.harness.benchbed import Outcome, benchmark


@benchmark(
    "fig8_uniform",
    headline="roco_latency_gap_low_load_xy",
    unit="fraction",
    direction="higher",
)
def bench(ctx):
    """RoCo's low-load latency advantage over the generic router (XY)."""
    scale = ctx.scale(BENCH)
    data = figure8(scale, executor=ctx.executor)
    low = scale.rates[0]
    gap = 1 - curve_value(data, "xy", "roco", low) / curve_value(
        data, "xy", "generic", low
    )
    return Outcome(gap, details={"curves": data})


def test_figure8_uniform_latency(benchmark):
    data = once(benchmark, lambda: figure8(BENCH, executor=EXECUTOR))
    print()
    print(report.render_latency_figure(data, "Figure 8", "uniform"))

    def lat(routing, router, rate):
        return curve_value(data, routing, router, rate)

    for routing in ("xy", "xy-yx", "adaptive"):
        for rate in BENCH.rates:
            # Headline: RoCo reduces latency vs the generic router at
            # every operating point (paper: 4-40%, growing with load).
            assert lat(routing, "roco", rate) < lat(routing, "generic", rate)
            # The Path-Sensitive router also beats the generic baseline.
            assert lat(routing, "path_sensitive", rate) < lat(
                routing, "generic", rate
            )

    # Magnitude: at low load RoCo's early-ejection + look-ahead advantage
    # over the generic router is well into the paper's 4-40% band.
    low = BENCH.rates[0]
    gap = 1 - lat("xy", "roco", low) / lat("xy", "generic", low)
    assert 0.04 <= gap <= 0.45

    # Latency is monotonically non-decreasing with offered load.
    for router in ("generic", "path_sensitive", "roco"):
        curve = [lat("xy", router, r) for r in BENCH.rates]
        assert curve == sorted(curve)
