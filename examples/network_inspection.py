"""Network inspection: see congestion, latency and fault shadows spatially.

Attaches the instrumentation probes to two runs — a healthy mesh and
one with a dead router — and renders ASCII heatmaps of link load and
per-source latency, making the congestion tree around the fault
visible.

Run with::

    python examples/network_inspection.py
"""

from repro import Component, ComponentFault, NodeId, SimulationConfig
from repro.core.simulator import Simulator
from repro.instrumentation import (
    DropProbe,
    LatencyMatrixProbe,
    LinkUtilizationProbe,
    render_legend,
    render_shaded,
)

SIZE = 8


def run(faults):
    config = SimulationConfig(
        width=SIZE,
        height=SIZE,
        router="roco",
        routing="xy",
        traffic="uniform",
        injection_rate=0.25,
        warmup_packets=150,
        measure_packets=1200,
        seed=21,
    )
    sim = Simulator(config, faults=faults)
    links = LinkUtilizationProbe(sim)
    latency = LatencyMatrixProbe(sim)
    drops = DropProbe(sim)
    result = sim.run()
    return sim, links, latency, drops, result


def show(title, sim, links, latency, drops, result):
    print(f"=== {title} ===")
    print(
        f"latency {result.average_latency:.1f} cyc, completion "
        f"{result.completion_probability:.3f}, drops {result.dropped_packets}"
    )
    throughput = links.node_throughput()
    maximum = max(throughput.values())
    print("\nper-router outbound flits/cycle:")
    print(render_shaded(throughput, SIZE, SIZE, maximum=maximum))
    print(render_legend(maximum))
    per_src = latency.per_source()
    if per_src:
        maximum = max(per_src.values())
        print("\nper-source average latency:")
        print(render_shaded(per_src, SIZE, SIZE, maximum=maximum))
        print(render_legend(maximum))
    print("\nhottest links:")
    for node, direction, util in links.hottest_links(5):
        print(f"  {node} -> {direction.name:5s} {util:.2f} flits/cycle")
    print()


def main() -> None:
    show("healthy 8x8 mesh", *run([]))
    fault = [ComponentFault(NodeId(3, 3), Component.CROSSBAR, module="row")]
    sim, links, latency, drops, result = run(fault)
    show("row-module crossbar fault at (3,3)", sim, links, latency, drops, result)
    if drops.records:
        worst = sorted(
            drops.drops_by_destination().items(), key=lambda kv: -kv[1]
        )[:3]
        print("destinations losing the most packets:")
        for node, count in worst:
            print(f"  {node}: {count}")


if __name__ == "__main__":
    main()
