"""Traffic study: how the three routers handle different workloads.

Sweeps injection rate under four traffic patterns (uniform, transpose,
self-similar web traffic and synthetic MPEG-2 video) and prints the
latency matrix per pattern — the motivating workloads of the paper's
introduction.

Run with::

    python examples/traffic_study.py
"""

from repro import SimulationConfig, run_simulation
from repro.harness import report

PATTERNS = ("uniform", "transpose", "self_similar", "multimedia")
ROUTERS = ("generic", "path_sensitive", "roco")
RATES = (0.05, 0.15, 0.25)


def latency(router: str, traffic: str, rate: float) -> float:
    config = SimulationConfig(
        width=8,
        height=8,
        router=router,
        routing="xy",
        traffic=traffic,
        injection_rate=rate,
        warmup_packets=150,
        measure_packets=900,
        seed=5,
    )
    return run_simulation(config).average_latency


def main() -> None:
    for traffic in PATTERNS:
        curves = {
            router: [(rate, latency(router, traffic, rate)) for rate in RATES]
            for router in ROUTERS
        }
        print(
            report.render_curves(
                curves,
                x_label="inj rate",
                title=f"== average latency (cycles), {traffic} traffic ==",
            )
        )
        print()


if __name__ == "__main__":
    main()
