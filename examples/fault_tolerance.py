"""Graceful degradation demo: the same broken hardware, three routers.

Injects identical permanent faults into each architecture and shows how
they react — the generic and Path-Sensitive routers lose whole nodes,
while RoCo isolates a single module (critical faults) or recycles the
fault away entirely (non-critical faults, Section 4 of the paper).

Run with::

    python examples/fault_tolerance.py
"""

from repro import Component, ComponentFault, NodeId, SimulationConfig, run_simulation
from repro.faults.recovery import recovery_mechanism
from repro.routers.roco.path_set import COLUMN, ROW

CRITICAL_FAULTS = [
    ComponentFault(NodeId(3, 3), Component.CROSSBAR, module=ROW),
    ComponentFault(NodeId(5, 2), Component.VA, module=COLUMN),
]

NONCRITICAL_FAULTS = [
    ComponentFault(NodeId(3, 3), Component.RC, module=ROW),
    ComponentFault(NodeId(5, 2), Component.SA, module=COLUMN),
    ComponentFault(NodeId(2, 5), Component.BUFFER, module=ROW, vc_position=1),
]


def run(router: str, faults) -> tuple[float, float, float]:
    config = SimulationConfig(
        width=8,
        height=8,
        router=router,
        routing="xy",
        traffic="uniform",
        injection_rate=0.30,
        warmup_packets=150,
        measure_packets=900,
        seed=11,
    )
    result = run_simulation(config, faults=faults)
    return (
        result.completion_probability,
        result.average_latency,
        result.pef,
    )


def main() -> None:
    for title, faults in (
        ("router-centric / critical faults", CRITICAL_FAULTS),
        ("message-centric / non-critical faults", NONCRITICAL_FAULTS),
    ):
        print(f"=== {title} ===")
        for fault in faults:
            print(
                f"  {fault.component.value:9s} fault at {fault.node} "
                f"-> RoCo recovery: {recovery_mechanism(fault.component)}"
            )
        print(f"  {'router':15s} {'completion':>10s} {'latency':>9s} {'PEF':>9s}")
        for router in ("generic", "path_sensitive", "roco"):
            completion, latency, pef = run(router, faults)
            print(
                f"  {router:15s} {completion:10.3f} {latency:9.1f} {pef:9.1f}"
            )
        print()


if __name__ == "__main__":
    main()
