"""Quickstart: simulate one RoCo 8x8 mesh and read the headline numbers.

Run with::

    python examples/quickstart.py
"""

from repro import SimulationConfig, run_simulation


def main() -> None:
    config = SimulationConfig(
        width=8,
        height=8,
        router="roco",  # "generic" | "path_sensitive" | "roco"
        routing="xy",  # "xy" | "xy-yx" | "adaptive"
        traffic="uniform",
        injection_rate=0.20,  # flits/node/cycle, the paper's x-axis unit
        warmup_packets=300,
        measure_packets=2000,
        seed=42,
    )
    result = run_simulation(config)

    print("RoCo Decoupled Router on an 8x8 mesh, uniform traffic @ 0.20")
    print(f"  average latency      : {result.average_latency:7.2f} cycles")
    print(f"  p95 latency          : {result.latency.p95:7.2f} cycles")
    print(f"  average hops         : {result.average_hops:7.2f}")
    print(f"  accepted throughput  : {result.throughput:7.3f} flits/node/cycle")
    print(f"  energy per packet    : {result.energy_per_packet_nj:7.3f} nJ")
    print(f"  completion           : {result.completion_probability:7.3f}")
    print(f"  PEF (=EDP, no faults): {result.pef:7.2f} nJ x cycles")

    # The same call with a different router makes an apples-to-apples
    # comparison — configs keep the paper's 60-flit buffer budget.
    generic = run_simulation(
        SimulationConfig(
            width=8,
            height=8,
            router="generic",
            routing="xy",
            traffic="uniform",
            injection_rate=0.20,
            warmup_packets=300,
            measure_packets=2000,
            seed=42,
        )
    )
    saving = 1 - result.average_latency / generic.average_latency
    print()
    print(f"Generic 2-stage router latency: {generic.average_latency:.2f} cycles")
    print(f"RoCo latency reduction        : {saving:.1%}  (paper: 4-40%)")


if __name__ == "__main__":
    main()
