"""Custom study workflow: sweep a parameter grid, export, pivot.

Shows the generic-study API that the fixed per-figure runners do not
cover: build a :class:`~repro.harness.sweeps.Sweep`, run it with a
progress callback, save the raw records to CSV/JSON, and pivot a metric
into a table.

Run with::

    python examples/sweep_to_csv.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro.core.config import SimulationConfig
from repro.core.simulator import run_simulation
from repro.harness import report
from repro.harness.export import write_csv, write_json
from repro.harness.sweeps import Sweep, pivot


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    out_dir.mkdir(parents=True, exist_ok=True)

    sweep = Sweep(
        axes={
            "router": ["generic", "path_sensitive", "roco"],
            "injection_rate": [0.10, 0.20, 0.30],
            "seed": [1, 2],
        },
        base={
            "width": 8,
            "height": 8,
            "routing": "xy",
            "traffic": "uniform",
            "warmup_packets": 120,
            "measure_packets": 700,
        },
    )
    print(f"Running {sweep.size} configurations on 2 workers ...")
    records = sweep.run(
        workers=2,
        progress=lambda done, total, record: print(
            f"  [{done:2d}/{total}] {record['router']:>14s} "
            f"rate={record['injection_rate']:.2f} seed={record['seed']} "
            f"lat={record['average_latency']:7.2f} cyc"
        ),
    )

    # Re-run each configuration object through the exporters as full
    # SimulationResult records (the sweep already returns flat dicts; we
    # regenerate two of them as results to demo the exporters too).
    sample_results = [
        run_simulation(config) for config in list(sweep.configurations())[:2]
    ]
    csv_path = write_csv(sample_results, out_dir / "sample.csv")
    json_path = write_json(sample_results, out_dir / "sample.json")

    table = pivot(records, row="router", column="injection_rate", value="average_latency")
    curves = {
        router: sorted(cols.items()) for router, cols in table.items()
    }
    print()
    print(
        report.render_curves(
            curves, x_label="inj rate", title="== latency pivot (mean over seeds) =="
        )
    )
    print(f"\nraw records: {csv_path} and {json_path}")


if __name__ == "__main__":
    main()
