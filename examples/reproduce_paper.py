"""Reproduce every table and figure of the paper's evaluation section.

Runs the per-artifact runners of :mod:`repro.harness.figures` and prints
paper-style reports.  Scale is selectable::

    python examples/reproduce_paper.py            # quick (~2 min)
    python examples/reproduce_paper.py standard   # multi-seed (~15 min)
    python examples/reproduce_paper.py paper      # the paper's dimensions

A second argument sets the worker count (0 = all cores, the default),
and ``REPRO_CACHE`` names an on-disk result-cache directory so
interrupted or repeated reproductions skip finished points::

    REPRO_CACHE=/tmp/repro-cache python examples/reproduce_paper.py standard 8

The benchmarks under ``benchmarks/`` assert the shape targets on the
same runners; this script is the human-readable front end.
"""

import os
import sys
import time

from repro.harness import (
    QUICK,
    SCALES,
    figure3,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    report,
    table1,
    table2,
)
from repro.harness.parallel import ParallelExecutor, ResultCache


def main() -> None:
    scale_name = sys.argv[1] if len(sys.argv) > 1 else "quick"
    scale = SCALES.get(scale_name, QUICK)
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    cache_dir = os.environ.get("REPRO_CACHE")
    executor = ParallelExecutor(
        workers=workers,
        cache=ResultCache(cache_dir) if cache_dir else None,
    )
    print(f"Reproducing the evaluation at the '{scale.name}' scale "
          f"({scale.width}x{scale.height} mesh, {scale.measure_packets} "
          f"measured packets, seeds {scale.seeds}) "
          f"on {executor.workers} worker(s).\n")
    start = time.time()

    print(report.render_table1(table1()))
    print()
    print(report.render_table2(table2()))
    print()

    data = figure3(scale, executor=executor)
    for panel, title in (
        ("row_xy", "(a) row input, XY"),
        ("column_xy", "(b) column input, XY"),
        ("adaptive", "(c) adaptive"),
    ):
        print(
            report.render_curves(
                data[panel], x_label="inj rate",
                title=f"== Figure 3 {title}: contention probability ==",
            )
        )
        print()

    print(report.render_latency_figure(figure8(scale, executor=executor), "Figure 8", "uniform"))
    print()
    print(report.render_latency_figure(figure9(scale, executor=executor), "Figure 9", "self-similar"))
    print()
    print(report.render_latency_figure(figure10(scale, executor=executor), "Figure 10", "transpose"))
    print()
    print(report.render_fault_figure(figure11(scale, executor=executor), "Figure 11 (critical faults)"))
    print()
    print(
        report.render_fault_figure(
            figure12(scale, executor=executor), "Figure 12 (non-critical faults)"
        )
    )
    print()
    print(report.render_figure13(figure13(scale, executor=executor)))
    print()
    print(report.render_figure14(figure14(scale, executor=executor)))
    print()
    print(f"Total reproduction time: {time.time() - start:.0f} s "
          f"({executor.simulations_run} simulations run)")


if __name__ == "__main__":
    main()
