"""Reproduce every table and figure of the paper's evaluation section.

Runs the per-artifact runners of :mod:`repro.harness.figures` and prints
paper-style reports.  Scale is selectable::

    python examples/reproduce_paper.py            # quick (~2 min)
    python examples/reproduce_paper.py standard   # multi-seed (~15 min)
    python examples/reproduce_paper.py paper      # the paper's dimensions

The benchmarks under ``benchmarks/`` assert the shape targets on the
same runners; this script is the human-readable front end.
"""

import sys
import time

from repro.harness import (
    QUICK,
    SCALES,
    figure3,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    report,
    table1,
    table2,
)


def main() -> None:
    scale_name = sys.argv[1] if len(sys.argv) > 1 else "quick"
    scale = SCALES.get(scale_name, QUICK)
    print(f"Reproducing the evaluation at the '{scale.name}' scale "
          f"({scale.width}x{scale.height} mesh, {scale.measure_packets} "
          f"measured packets, seeds {scale.seeds}).\n")
    start = time.time()

    print(report.render_table1(table1()))
    print()
    print(report.render_table2(table2()))
    print()

    data = figure3(scale)
    for panel, title in (
        ("row_xy", "(a) row input, XY"),
        ("column_xy", "(b) column input, XY"),
        ("adaptive", "(c) adaptive"),
    ):
        print(
            report.render_curves(
                data[panel], x_label="inj rate",
                title=f"== Figure 3 {title}: contention probability ==",
            )
        )
        print()

    print(report.render_latency_figure(figure8(scale), "Figure 8", "uniform"))
    print()
    print(report.render_latency_figure(figure9(scale), "Figure 9", "self-similar"))
    print()
    print(report.render_latency_figure(figure10(scale), "Figure 10", "transpose"))
    print()
    print(report.render_fault_figure(figure11(scale), "Figure 11 (critical faults)"))
    print()
    print(
        report.render_fault_figure(
            figure12(scale), "Figure 12 (non-critical faults)"
        )
    )
    print()
    print(report.render_figure13(figure13(scale)))
    print()
    print(report.render_figure14(figure14(scale)))
    print()
    print(f"Total reproduction time: {time.time() - start:.0f} s")


if __name__ == "__main__":
    main()
