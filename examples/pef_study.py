"""PEF study: why latency or energy alone mislead in faulty networks.

The paper's Section 5.3 argues that EDP hides reliability: a router can
post decent latency *on the packets it delivers* while silently losing
traffic around faulty nodes.  This example sweeps fault counts and shows
each ingredient (latency, energy, completion) next to the combined PEF.

Run with::

    python examples/pef_study.py
"""

import random

from repro import SimulationConfig, random_faults, run_simulation
from repro.core.types import NodeId
from repro.harness import report
from repro.metrics import PEFBreakdown

ROUTERS = ("generic", "path_sensitive", "roco")
FAULT_COUNTS = (0, 1, 2, 4)


def measure(router: str, n_faults: int) -> PEFBreakdown:
    config = SimulationConfig(
        width=8,
        height=8,
        router=router,
        routing="adaptive",
        traffic="uniform",
        injection_rate=0.30,
        warmup_packets=120,
        measure_packets=700,
        seed=3,
    )
    faults = []
    if n_faults:
        nodes = [NodeId(x, y) for y in range(8) for x in range(8)]
        faults = random_faults(nodes, n_faults, random.Random(99), critical=True)
    result = run_simulation(config, faults=faults)
    return PEFBreakdown(
        average_latency=result.average_latency,
        energy_per_packet_nj=result.energy_per_packet_nj,
        completion_probability=result.completion_probability,
    )


def main() -> None:
    rows = []
    for router in ROUTERS:
        for count in FAULT_COUNTS:
            b = measure(router, count)
            rows.append(
                [
                    router,
                    count,
                    f"{b.average_latency:.1f}",
                    f"{b.energy_per_packet_nj:.3f}",
                    f"{b.completion_probability:.3f}",
                    f"{b.edp:.1f}",
                    f"{b.value:.1f}",
                ]
            )
    print(
        report.render_table(
            ["router", "#faults", "latency", "E/pkt nJ", "completion", "EDP", "PEF"],
            rows,
            title="== PEF breakdown, adaptive routing, 30% injection ==",
        )
    )
    print()
    print("Note how EDP alone under-reports the generic router's problem:")
    print("its delivered packets look acceptable, but PEF charges it for")
    print("every packet the dead node swallowed.")


if __name__ == "__main__":
    main()
